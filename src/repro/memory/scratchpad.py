"""Multi-banked scratchpad storage.

:class:`ScratchpadMemory` owns the :class:`~repro.memory.bank.MemoryBank`
instances and provides two views on them:

* a *port* view used by the crossbar/memory subsystem — word accesses at a
  decoded (bank, line) location, which count towards the access statistics;
* a *backdoor* view used by the DMA model, the compiler's data loader and the
  tests — byte-level reads/writes at flat logical addresses under a given
  addressing mode, which do not consume ports and are not counted.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .addressing import BankGeometry, decode_address
from .bank import MemoryBank


class ScratchpadMemory:
    """The on-chip scratchpad: ``num_banks`` single-ported banks."""

    def __init__(self, geometry: BankGeometry) -> None:
        self.geometry = geometry
        self.banks: List[MemoryBank] = [
            MemoryBank(index, geometry.bank_width_bytes, geometry.bank_depth)
            for index in range(geometry.num_banks)
        ]

    # ------------------------------------------------------------------
    # Port view (counted accesses).
    # ------------------------------------------------------------------
    def read_word(self, bank: int, line: int) -> np.ndarray:
        """Read one full word from a decoded location."""
        return self.banks[bank].read(line)

    def write_word(
        self,
        bank: int,
        line: int,
        data: np.ndarray,
        strobe: Optional[np.ndarray] = None,
    ) -> None:
        """Write one word (optionally byte-strobed) at a decoded location."""
        self.banks[bank].write(line, data, strobe)

    # ------------------------------------------------------------------
    # Bulk span access (macro-step fast path; uncounted — the caller
    # applies the per-bank access counters for the whole span at once).
    # ------------------------------------------------------------------
    def stacked_words(self) -> np.ndarray:
        """One ``(num_banks, depth, width)`` copy of the whole scratchpad.

        Indexing the stack with decoded ``(bank, line)`` arrays gathers many
        words in one numpy operation; the macro-step replayer builds the
        stack once per span and serves every channel's reads from it.
        """
        return np.stack([bank._data for bank in self.banks])

    def scatter_words(
        self, banks: np.ndarray, lines: np.ndarray, words: np.ndarray
    ) -> None:
        """Write many full words at decoded locations (one op per bank).

        Locations must be unique — duplicate targets within one scatter
        would make the outcome order-dependent, which the macro-step
        planner rules out before calling.
        """
        banks = np.asarray(banks)
        lines = np.asarray(lines)
        for bank_index in np.unique(banks):
            mask = banks == bank_index
            self.banks[int(bank_index)]._data[lines[mask]] = words[mask]

    @property
    def total_reads(self) -> int:
        return sum(bank.read_count for bank in self.banks)

    @property
    def total_writes(self) -> int:
        return sum(bank.write_count for bank in self.banks)

    # ------------------------------------------------------------------
    # Backdoor view (uncounted, byte granular, used for data loading).
    # ------------------------------------------------------------------
    def backdoor_write(self, address: int, data: np.ndarray, group_size: int) -> None:
        """Write ``data`` bytes starting at logical ``address``.

        ``group_size`` selects the addressing mode under which the region is
        later accessed by the streamers, so the bytes land in the same
        physical locations the streamer requests will target.
        """
        payload = np.ascontiguousarray(np.asarray(data, dtype=np.uint8)).ravel()
        width = self.geometry.bank_width_bytes
        offset = 0
        remaining = payload.size
        while remaining > 0:
            location = decode_address(address + offset, self.geometry, group_size)
            chunk = min(remaining, width - location.byte_offset)
            bank = self.banks[location.bank]
            line_data = bank.peek(location.line)
            line_data[location.byte_offset : location.byte_offset + chunk] = payload[
                offset : offset + chunk
            ]
            bank.poke(location.line, line_data)
            offset += chunk
            remaining -= chunk

    def backdoor_read(self, address: int, size: int, group_size: int) -> np.ndarray:
        """Read ``size`` bytes starting at logical ``address``."""
        width = self.geometry.bank_width_bytes
        out = np.zeros(size, dtype=np.uint8)
        offset = 0
        remaining = size
        while remaining > 0:
            location = decode_address(address + offset, self.geometry, group_size)
            chunk = min(remaining, width - location.byte_offset)
            line_data = self.banks[location.bank].peek(location.line)
            out[offset : offset + chunk] = line_data[
                location.byte_offset : location.byte_offset + chunk
            ]
            offset += chunk
            remaining -= chunk
        return out

    def clear(self) -> None:
        """Zero-fill every bank and reset the access counters."""
        for bank in self.banks:
            bank.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScratchpadMemory(geometry={self.geometry})"
