"""Single scratchpad memory bank.

A bank is a single-ported SRAM: one read *or* one write per cycle.  The
arbitration that enforces the single port lives in
:class:`repro.memory.subsystem.MemorySubsystem`; the bank itself is the plain
storage array plus bounds checking and byte-strobe support for partial
writes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class MemoryBank:
    """One bank of the multi-banked scratchpad.

    Parameters
    ----------
    index:
        Position of this bank inside the scratchpad (used in error messages).
    width_bytes:
        Width of one wordline in bytes.
    depth:
        Number of wordlines.
    """

    def __init__(self, index: int, width_bytes: int, depth: int) -> None:
        if width_bytes <= 0 or depth <= 0:
            raise ValueError("bank width and depth must be positive")
        self.index = int(index)
        self.width_bytes = int(width_bytes)
        self.depth = int(depth)
        self._data = np.zeros((self.depth, self.width_bytes), dtype=np.uint8)
        self.read_count = 0
        self.write_count = 0

    # ------------------------------------------------------------------
    def _check_line(self, line: int) -> None:
        if not 0 <= line < self.depth:
            raise IndexError(
                f"wordline {line} out of range for bank {self.index} "
                f"(depth={self.depth})"
            )

    def read(self, line: int) -> np.ndarray:
        """Return a copy of wordline ``line``."""
        self._check_line(line)
        self.read_count += 1
        return self._data[line].copy()

    def write(
        self, line: int, data: np.ndarray, strobe: Optional[np.ndarray] = None
    ) -> None:
        """Write ``data`` into wordline ``line``.

        ``strobe`` is an optional boolean mask selecting which bytes to
        update (hardware byte-enable).  Without a strobe the full word is
        replaced.
        """
        self._check_line(line)
        payload = np.asarray(data, dtype=np.uint8)
        if payload.shape != (self.width_bytes,):
            raise ValueError(
                f"write data must have {self.width_bytes} bytes, "
                f"got shape {payload.shape}"
            )
        self.write_count += 1
        if strobe is None:
            self._data[line] = payload
            return
        mask = np.asarray(strobe, dtype=bool)
        if mask.shape != (self.width_bytes,):
            raise ValueError(
                f"strobe must have {self.width_bytes} entries, got {mask.shape}"
            )
        self._data[line][mask] = payload[mask]

    # ------------------------------------------------------------------
    # Backdoor access (no port accounting) used by the DMA and tests.
    # ------------------------------------------------------------------
    def peek(self, line: int) -> np.ndarray:
        """Read a wordline without incrementing the access counters."""
        self._check_line(line)
        return self._data[line].copy()

    def poke(self, line: int, data: np.ndarray) -> None:
        """Write a wordline without incrementing the access counters."""
        self._check_line(line)
        payload = np.asarray(data, dtype=np.uint8)
        if payload.shape != (self.width_bytes,):
            raise ValueError(
                f"poke data must have {self.width_bytes} bytes, "
                f"got shape {payload.shape}"
            )
        self._data[line] = payload

    def clear(self) -> None:
        """Zero-fill the bank and reset its access counters."""
        self._data.fill(0)
        self.read_count = 0
        self.write_count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryBank(index={self.index}, width_bytes={self.width_bytes}, "
            f"depth={self.depth})"
        )
