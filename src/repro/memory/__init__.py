"""Multi-banked scratchpad memory subsystem (banks, crossbar, addressing)."""

from .addressing import (
    AddressingMode,
    BankGeometry,
    BankLocation,
    decode_address,
    decode_address_bit_permutation,
    encode_location,
    group_size_for_mode,
    mode_for_group_size,
    normalize_group_size,
    permutation_spec,
    permute_word_index,
)
from .bank import MemoryBank
from .scratchpad import ScratchpadMemory
from .subsystem import MemoryRequest, MemoryResponse, MemorySubsystem

__all__ = [
    "AddressingMode",
    "BankGeometry",
    "BankLocation",
    "decode_address",
    "decode_address_bit_permutation",
    "encode_location",
    "group_size_for_mode",
    "mode_for_group_size",
    "normalize_group_size",
    "permutation_spec",
    "permute_word_index",
    "MemoryBank",
    "ScratchpadMemory",
    "MemoryRequest",
    "MemoryResponse",
    "MemorySubsystem",
]
