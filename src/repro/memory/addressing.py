"""Addressing modes of the multi-banked scratchpad (paper §III-D, Fig. 5).

Three addressing modes map a flat byte address onto (bank, wordline):

* **FIMA** — fully-interleaved: consecutive words round-robin over all banks.
* **NIMA** — non-interleaved: consecutive words fill one bank before moving
  to the next.
* **GIMA** — grouped-interleaved: banks are partitioned into groups of size
  ``G``; words interleave inside a group and groups are filled one after the
  other.

All three are instances of the same formula parameterised by the group size
``G`` (``G == num_banks`` is FIMA, ``G == 1`` is NIMA).  When every quantity
is a power of two the mapping is a pure permutation of address bits, which is
exactly how the hardware address remapper implements it (Fig. 5(e)); both the
arithmetic and the bit-permutation formulations are provided here and are
proven equivalent by the test-suite.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple


class AddressingMode(enum.Enum):
    """Symbolic names of the three supported addressing modes."""

    FULLY_INTERLEAVED = "FIMA"
    GROUPED_INTERLEAVED = "GIMA"
    NON_INTERLEAVED = "NIMA"

    @property
    def short_name(self) -> str:
        return self.value


@dataclass(frozen=True)
class BankGeometry:
    """Physical organisation of the scratchpad memory.

    Attributes
    ----------
    num_banks:
        Total number of banks (``N_BF`` in the paper's Table II).
    bank_width_bytes:
        Width of one bank word in bytes (``W_B`` is given in bits in the
        paper; 64 bits = 8 bytes in the evaluation system).
    bank_depth:
        Number of wordlines per bank.
    """

    num_banks: int
    bank_width_bytes: int
    bank_depth: int

    def __post_init__(self) -> None:
        if self.num_banks <= 0:
            raise ValueError("num_banks must be positive")
        if self.bank_width_bytes <= 0:
            raise ValueError("bank_width_bytes must be positive")
        if self.bank_depth <= 0:
            raise ValueError("bank_depth must be positive")

    @property
    def capacity_bytes(self) -> int:
        """Total scratchpad capacity in bytes."""
        return self.num_banks * self.bank_width_bytes * self.bank_depth

    @property
    def total_words(self) -> int:
        """Total number of addressable words."""
        return self.num_banks * self.bank_depth

    def contains(self, address: int, size: int = 1) -> bool:
        """Whether the byte range ``[address, address+size)`` is in range."""
        return 0 <= address and address + size <= self.capacity_bytes


@dataclass(frozen=True)
class BankLocation:
    """A decoded physical location inside the scratchpad."""

    bank: int
    line: int
    byte_offset: int

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.bank, self.line, self.byte_offset)


def normalize_group_size(geometry: BankGeometry, group_size: int) -> int:
    """Validate a group size against the geometry and return it.

    ``group_size`` must divide ``num_banks`` so that groups tile the bank
    array exactly.
    """
    if group_size <= 0:
        raise ValueError(f"group size must be positive, got {group_size}")
    if geometry.num_banks % group_size != 0:
        raise ValueError(
            f"group size {group_size} does not divide the bank count "
            f"{geometry.num_banks}"
        )
    return group_size


def mode_for_group_size(geometry: BankGeometry, group_size: int) -> AddressingMode:
    """Classify a group size as one of the three addressing modes."""
    group_size = normalize_group_size(geometry, group_size)
    if group_size == geometry.num_banks:
        return AddressingMode.FULLY_INTERLEAVED
    if group_size == 1:
        return AddressingMode.NON_INTERLEAVED
    return AddressingMode.GROUPED_INTERLEAVED


def group_size_for_mode(
    geometry: BankGeometry, mode: AddressingMode, gima_group_size: int = 0
) -> int:
    """Return the bank-group size implementing ``mode`` on ``geometry``."""
    if mode is AddressingMode.FULLY_INTERLEAVED:
        return geometry.num_banks
    if mode is AddressingMode.NON_INTERLEAVED:
        return 1
    if gima_group_size <= 0:
        raise ValueError("GIMA requires an explicit group size")
    return normalize_group_size(geometry, gima_group_size)


def decode_address(
    address: int, geometry: BankGeometry, group_size: int
) -> BankLocation:
    """Decode a flat byte address into (bank, line, byte offset).

    This is the arithmetic formulation valid for any (not necessarily
    power-of-two) geometry.
    """
    if address < 0:
        raise ValueError(f"negative address {address}")
    group_size = normalize_group_size(geometry, group_size)
    byte_offset = address % geometry.bank_width_bytes
    word = address // geometry.bank_width_bytes
    if word >= geometry.total_words:
        raise ValueError(
            f"address {address:#x} exceeds scratchpad capacity "
            f"{geometry.capacity_bytes:#x}"
        )
    words_per_group = group_size * geometry.bank_depth
    group = word // words_per_group
    within = word % words_per_group
    bank_in_group = within % group_size
    line = within // group_size
    bank = group * group_size + bank_in_group
    return BankLocation(bank=bank, line=line, byte_offset=byte_offset)


def decode_address_batch(addresses, geometry: BankGeometry, group_size: int):
    """Vectorized :func:`decode_address` over a numpy array of byte addresses.

    Returns ``(banks, lines, byte_offsets)`` as ``int64`` arrays with the
    same shape as ``addresses``.  Used by the macro-step fast path to
    evaluate the bank mapping of whole address spans at once instead of
    probing one address at a time.
    """
    import numpy as np

    group_size = normalize_group_size(geometry, group_size)
    addresses = np.asarray(addresses, dtype=np.int64)
    if addresses.size and int(addresses.min()) < 0:
        raise ValueError("negative address in batch")
    byte_offset = addresses % geometry.bank_width_bytes
    word = addresses // geometry.bank_width_bytes
    if addresses.size and int(word.max()) >= geometry.total_words:
        raise ValueError(
            f"address batch exceeds scratchpad capacity "
            f"{geometry.capacity_bytes:#x}"
        )
    words_per_group = group_size * geometry.bank_depth
    group = word // words_per_group
    within = word % words_per_group
    bank = group * group_size + within % group_size
    line = within // group_size
    return bank, line, byte_offset


def encode_location(
    location: BankLocation, geometry: BankGeometry, group_size: int
) -> int:
    """Inverse of :func:`decode_address` (used by tests and the DMA)."""
    group_size = normalize_group_size(geometry, group_size)
    group, bank_in_group = divmod(location.bank, group_size)
    within = location.line * group_size + bank_in_group
    word = group * group_size * geometry.bank_depth + within
    return word * geometry.bank_width_bytes + location.byte_offset


# ----------------------------------------------------------------------
# Bit-permutation formulation (hardware address remapper, Fig. 5(e)).
# ----------------------------------------------------------------------
def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def _log2(value: int) -> int:
    if not _is_power_of_two(value):
        raise ValueError(f"{value} is not a power of two")
    return value.bit_length() - 1


def permutation_spec(geometry: BankGeometry, group_size: int) -> List[int]:
    """Return the word-index bit permutation implementing ``group_size``.

    The returned list maps *destination* bit position -> *source* bit
    position, where the destination word index is interpreted by a canonical
    fully-interleaved decoder (bank = low ``log2(num_banks)`` bits, line =
    high bits).  Requires power-of-two geometry, exactly as the hardware
    remapper does.
    """
    group_size = normalize_group_size(geometry, group_size)
    bank_bits = _log2(geometry.num_banks)
    line_bits = _log2(geometry.bank_depth)
    intra_bits = _log2(group_size)
    group_bits = bank_bits - intra_bits

    # Logical word-index bit layout (LSB first):
    #   [0, intra_bits)                     intra-group bank select
    #   [intra_bits, intra_bits+line_bits)  wordline select
    #   [intra_bits+line_bits, ...)         group select
    # Destination (canonical FIMA) layout (LSB first):
    #   [0, intra_bits)                     intra-group bank select
    #   [intra_bits, bank_bits)             group select
    #   [bank_bits, bank_bits+line_bits)    wordline select
    spec: List[int] = []
    for dest in range(intra_bits):
        spec.append(dest)
    for dest in range(group_bits):
        spec.append(intra_bits + line_bits + dest)
    for dest in range(line_bits):
        spec.append(intra_bits + dest)
    return spec


def permute_word_index(word: int, spec: List[int]) -> int:
    """Apply a bit permutation produced by :func:`permutation_spec`."""
    result = 0
    for dest, src in enumerate(spec):
        if (word >> src) & 1:
            result |= 1 << dest
    return result


def decode_address_bit_permutation(
    address: int, geometry: BankGeometry, group_size: int
) -> BankLocation:
    """Decode via the hardware-style bit permutation (power-of-two only)."""
    byte_offset = address % geometry.bank_width_bytes
    word = address // geometry.bank_width_bytes
    if word >= geometry.total_words:
        raise ValueError(
            f"address {address:#x} exceeds scratchpad capacity "
            f"{geometry.capacity_bytes:#x}"
        )
    spec = permutation_spec(geometry, group_size)
    permuted = permute_word_index(word, spec)
    bank = permuted % geometry.num_banks
    line = permuted // geometry.num_banks
    return BankLocation(bank=bank, line=line, byte_offset=byte_offset)
