"""Behavioural performance model of Gemmini (output/weight stationary).

Gemmini [Genc et al., DAC 2021] couples a 16×16 systolic array to a shared,
banked scratchpad driven by explicit ``mvin``/``mvout`` commands issued by a
RISC-V host.  The paper under reproduction highlights two of its documented
data-movement limitations: memory access is not decoupled from execution
(each tile's loads/stores serialise with compute) and the scratchpad has no
bank-conflict management, which is why Gemmini's reported PE-array
utilization can drop to ~10%.

The model below charges, per output tile:

* the systolic compute time (one reduction element per cycle plus array
  fill/drain),
* the un-overlapped ``mvin``/``mvout`` traffic through a single scratchpad
  port, inflated by a bank-conflict factor,
* a fixed per-tile command/instruction overhead on the host.

Weight-stationary mode keeps the weight tile resident so its load cost is
amortised over the output rows that reuse it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils.packing import ceil_div
from ..workloads.spec import ConvWorkload, GemmWorkload, Workload
from .base import DataMovementSolution, FeatureProfile, OverheadProfile


def workload_as_gemm(workload: Workload) -> tuple:
    """(M, N, K) view of a workload (convolutions via implicit GeMM)."""
    if isinstance(workload, GemmWorkload):
        return workload.m, workload.n, workload.k
    if isinstance(workload, ConvWorkload):
        return (
            workload.output_pixels,
            workload.out_channels,
            workload.kernel_h * workload.kernel_w * workload.in_channels,
        )
    raise TypeError(f"unsupported workload type {type(workload)!r}")


@dataclass(frozen=True)
class GemminiParameters:
    """Microarchitectural constants of the behavioural model."""

    array_dim: int = 16
    scratchpad_port_bytes_per_cycle: int = 16
    bank_conflict_factor: float = 2.5
    per_tile_command_overhead_cycles: int = 150
    accumulator_bytes_per_element: int = 4


class GemminiModel(DataMovementSolution):
    """Gemmini in output-stationary (OS) or weight-stationary (WS) mode."""

    reference = "Genc et al., 'Gemmini', DAC 2021"

    def __init__(self, dataflow: str = "OS", params: GemminiParameters = GemminiParameters()):
        dataflow = dataflow.upper()
        if dataflow not in ("OS", "WS"):
            raise ValueError("dataflow must be 'OS' or 'WS'")
        self.dataflow = dataflow
        self.params = params
        self.name = f"Gemmini ({dataflow})"

    # ------------------------------------------------------------------
    def feature_profile(self) -> FeatureProfile:
        return FeatureProfile(
            open_source=True,
            reusable_design=False,
            decoupled_access_execute=False,
            programmable_affine_dims=2,
            fine_grained_prefetch=False,
            runtime_addressing_mode_switching=False,
            on_the_fly_data_manipulation=False,
        )

    # ------------------------------------------------------------------
    @property
    def has_performance_model(self) -> bool:
        return True

    def utilization(self, workload: Workload) -> float:
        m, n, k = workload_as_gemm(workload)
        p = self.params
        dim = p.array_dim
        tiles_m = ceil_div(m, dim)
        tiles_n = ceil_div(n, dim)

        # Per output tile: K reduction steps plus array fill/drain.
        compute_cycles = k + 2 * dim
        useful_cycles = k  # cycles during which the array does useful MACs

        a_bytes = k * dim
        b_bytes = k * dim
        out_bytes = dim * dim * p.accumulator_bytes_per_element
        if self.dataflow == "OS":
            moved_bytes = a_bytes + b_bytes + out_bytes
        else:
            # Weight stationary: the weight tile load is amortised over the
            # tiles_m output tiles that reuse it.
            moved_bytes = a_bytes + out_bytes + b_bytes / max(tiles_m, 1)
        data_cycles = (
            moved_bytes / p.scratchpad_port_bytes_per_cycle
        ) * p.bank_conflict_factor

        tile_cycles = (
            compute_cycles + data_cycles + p.per_tile_command_overhead_cycles
        )
        utilization = useful_cycles / tile_cycles
        # The array itself is only m×n-tile populated for edge tiles; fold the
        # padding inefficiency in (same normalisation as the paper's 512-PE
        # comparison).
        padding_efficiency = (m * n) / (tiles_m * dim * tiles_n * dim)
        return max(0.0, min(1.0, utilization * padding_efficiency))
