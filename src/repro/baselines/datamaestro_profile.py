"""DataMaestro's own Table I / Fig. 10 profile, plus the simulated column.

The DataMaestro entry in the comparison tables is backed by the actual
cycle-level system model of this repository: its utilization column in
Fig. 10 (left) is *measured* by simulation rather than estimated by an
analytic formula.  The measurement goes through :mod:`repro.runtime`, so a
configured result cache makes repeated comparisons free.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.area import AreaModel
from ..core.params import FeatureSet
from ..system.design import AcceleratorSystemDesign, datamaestro_evaluation_system
from ..workloads.spec import Workload
from .base import DataMovementSolution, FeatureProfile, OverheadProfile


class DataMaestroSolution(DataMovementSolution):
    """The DataMaestro-boosted accelerator system (this repository)."""

    name = "DataMaestro"
    reference = "this work (DAC 2025)"

    def __init__(
        self,
        design: Optional[AcceleratorSystemDesign] = None,
        features: Optional[FeatureSet] = None,
        seed: int = 0,
        simulator=None,
    ) -> None:
        self.design = design or datamaestro_evaluation_system()
        self.features = features or FeatureSet.all_enabled()
        self.seed = seed
        self._simulator = simulator
        self._cache: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def feature_profile(self) -> FeatureProfile:
        return FeatureProfile(
            open_source=True,
            reusable_design=True,
            decoupled_access_execute=True,
            programmable_affine_dims=None,  # N-D
            fine_grained_prefetch=True,
            runtime_addressing_mode_switching=True,
            on_the_fly_data_manipulation=True,
        )

    def overhead_profile(self) -> OverheadProfile:
        """Data-movement share measured with the repository's area model."""
        breakdown = AreaModel(self.design).system_breakdown()
        shares = breakdown.shares_percent()
        return OverheadProfile(
            area_percent=round(shares["datamaestros"], 2),
            power_percent=None,
            source="repro.analysis.area (model)",
        )

    # ------------------------------------------------------------------
    @property
    def has_performance_model(self) -> bool:
        return True

    def utilization(self, workload: Workload) -> float:
        """Measured utilization from the cycle-level simulation."""
        cached = self._cache.get(workload.name)
        if cached is not None:
            return cached
        # Imported lazily: the runtime's backend registry imports
        # repro.baselines, so a module-level import would be circular.
        from ..runtime.job import SimJob
        from ..runtime.simulator import default_simulator

        simulator = self._simulator or default_simulator()
        outcome = simulator.simulate(
            SimJob(
                workload=workload,
                design=self.design,
                features=self.features,
                seed=self.seed,
            )
        )
        self._cache[workload.name] = outcome.utilization
        return outcome.utilization
