"""Base classes for the state-of-the-art comparison models (Table I, Fig. 10).

Each comparator from the paper is described by:

* a **feature profile** — the qualitative rows of Table I (open source,
  reusable design, decoupled access/execute, programmable affine dimensions,
  fine-grained prefetch, runtime addressing-mode switching, on-the-fly data
  manipulation);
* an **overhead profile** — the share of system area/power its data-movement
  machinery occupies, as compiled by the paper in Fig. 10 (right);
* optionally a **performance model** — an analytic utilization estimate used
  for the normalized-throughput comparison of Fig. 10 (left).  These models
  are behavioural approximations built from each accelerator's documented
  data-orchestration scheme (see DESIGN.md, substitution table); they are not
  re-implementations of the original RTL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..workloads.spec import Workload

#: Feature keys in the order Table I lists them.
TABLE1_FEATURES = (
    "open_source",
    "reusable_design",
    "decoupled_access_execute",
    "programmable_affine_dims",
    "fine_grained_prefetch",
    "runtime_addressing_mode_switching",
    "on_the_fly_data_manipulation",
)


@dataclass(frozen=True)
class FeatureProfile:
    """One row set of Table I."""

    open_source: bool
    reusable_design: bool
    decoupled_access_execute: bool
    #: Number of programmable affine dimensions (0 = not programmable,
    #: ``None`` encodes the paper's "N-D" for DataMaestro).
    programmable_affine_dims: Optional[int]
    fine_grained_prefetch: bool
    runtime_addressing_mode_switching: bool
    on_the_fly_data_manipulation: bool

    def as_dict(self) -> Dict[str, object]:
        dims = self.programmable_affine_dims
        if dims is None:
            dims_text = "N-D"
        elif dims == 0:
            dims_text = False
        else:
            dims_text = f"{dims}-D"
        return {
            "open_source": self.open_source,
            "reusable_design": self.reusable_design,
            "decoupled_access_execute": self.decoupled_access_execute,
            "programmable_affine_dims": dims_text,
            "fine_grained_prefetch": self.fine_grained_prefetch,
            "runtime_addressing_mode_switching": self.runtime_addressing_mode_switching,
            "on_the_fly_data_manipulation": self.on_the_fly_data_manipulation,
        }


@dataclass(frozen=True)
class OverheadProfile:
    """Share of the whole accelerator system used by data movement."""

    area_percent: Optional[float]
    power_percent: Optional[float]
    source: str = "paper Fig. 10 (right)"


class DataMovementSolution:
    """A state-of-the-art data movement solution / accelerator."""

    #: Display name (matching the paper's Table I column headers).
    name: str = "unnamed"
    #: Publication reference, for reports.
    reference: str = ""

    @property
    def slug(self) -> str:
        """Registry identifier of this model.

        ``BASELINE_REGISTRY`` stamps its authoritative key onto every model
        it instantiates; models built directly fall back to a slug derived
        from the display name.
        """
        assigned = getattr(self, "_slug", None)
        if assigned is not None:
            return assigned
        text = self.name.lower()
        for old, new in ((" (", "-"), (")", ""), (" ", "-"), ("[", ""), ("]", ""), (".", "")):
            text = text.replace(old, new)
        return text

    def feature_profile(self) -> FeatureProfile:
        raise NotImplementedError

    def overhead_profile(self) -> Optional[OverheadProfile]:
        """Data-movement area/power share, if the literature reports it."""
        return None

    # ------------------------------------------------------------------
    # Performance model (only the Fig. 10 throughput baselines implement it).
    # ------------------------------------------------------------------
    @property
    def has_performance_model(self) -> bool:
        return False

    def utilization(self, workload: Workload) -> float:
        """Estimated PE-array utilization on ``workload`` (0..1)."""
        raise NotImplementedError(f"{self.name} has no performance model")

    def normalized_throughput_gops(
        self, workload: Workload, num_pes: int = 512, frequency_ghz: float = 1.0
    ) -> float:
        """Throughput normalized to a common PE count and clock (Fig. 10)."""
        return 2.0 * num_pes * frequency_ghz * self.utilization(workload)

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "name": self.name,
            "slug": self.slug,
            "reference": self.reference,
            "has_performance_model": self.has_performance_model,
        }
        data.update(self.feature_profile().as_dict())
        overhead = self.overhead_profile()
        if overhead is not None:
            data["data_movement_area_percent"] = overhead.area_percent
            data["data_movement_power_percent"] = overhead.power_percent
        return data
