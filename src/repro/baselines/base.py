"""Base classes for the state-of-the-art comparison models (Table I, Fig. 10).

Each comparator from the paper is described by:

* a **feature profile** — the qualitative rows of Table I (open source,
  reusable design, decoupled access/execute, programmable affine dimensions,
  fine-grained prefetch, runtime addressing-mode switching, on-the-fly data
  manipulation);
* an **overhead profile** — the share of system area/power its data-movement
  machinery occupies, as compiled by the paper in Fig. 10 (right);
* optionally a **performance model** — an analytic utilization estimate used
  for the normalized-throughput comparison of Fig. 10 (left).  These models
  are behavioural approximations built from each accelerator's documented
  data-orchestration scheme (see DESIGN.md, substitution table); they are not
  re-implementations of the original RTL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..workloads.spec import Workload

class AnalyticCycleModel:
    """Event-protocol view of an analytic performance estimate.

    The comparator models are closed-form — they predict a total cycle count
    without maintaining per-cycle state — which is the extreme case of the
    next-event protocol (:mod:`repro.engine`): *every* intermediate cycle is
    skippable.  This adapter exposes an estimate as an event-driven target so
    the shared :class:`~repro.sim.runner.CycleRunner` can drive baselines and
    the cycle-level system through one interface: the event engine completes
    the model in two real steps (the first step proves the fixpoint, one
    bulk ``advance`` jumps to the completion event), while the lockstep
    engine grinds through all ``total_cycles`` — both report the same count.
    """

    def __init__(self, name: str, total_cycles: int) -> None:
        if total_cycles <= 0:
            raise ValueError("total_cycles must be positive")
        self.name = name
        self.total_cycles = int(total_cycles)
        self.cycle = 0
        self.last_step_activity = 0
        #: Cycles the event engine bulk-advanced instead of stepping.
        self.skipped_cycles = 0

    @property
    def done(self) -> bool:
        return self.cycle >= self.total_cycles

    def step(self) -> bool:
        """Advance one cycle; only the completion cycle counts as activity."""
        if self.done:
            return False
        self.cycle += 1
        self.last_step_activity = 1 if self.done else 0
        return not self.done

    def next_event_cycle(self) -> Optional[int]:
        """The only event an analytic model schedules is its completion."""
        if self.done:
            return None
        return self.total_cycles - 1

    def advance(self, cycles: int) -> None:
        """Skip ``cycles`` — an analytic model has no per-cycle counters."""
        self.cycle += cycles
        self.skipped_cycles += cycles


#: Feature keys in the order Table I lists them.
TABLE1_FEATURES = (
    "open_source",
    "reusable_design",
    "decoupled_access_execute",
    "programmable_affine_dims",
    "fine_grained_prefetch",
    "runtime_addressing_mode_switching",
    "on_the_fly_data_manipulation",
)


@dataclass(frozen=True)
class FeatureProfile:
    """One row set of Table I."""

    open_source: bool
    reusable_design: bool
    decoupled_access_execute: bool
    #: Number of programmable affine dimensions (0 = not programmable,
    #: ``None`` encodes the paper's "N-D" for DataMaestro).
    programmable_affine_dims: Optional[int]
    fine_grained_prefetch: bool
    runtime_addressing_mode_switching: bool
    on_the_fly_data_manipulation: bool

    def as_dict(self) -> Dict[str, object]:
        dims = self.programmable_affine_dims
        if dims is None:
            dims_text = "N-D"
        elif dims == 0:
            dims_text = False
        else:
            dims_text = f"{dims}-D"
        return {
            "open_source": self.open_source,
            "reusable_design": self.reusable_design,
            "decoupled_access_execute": self.decoupled_access_execute,
            "programmable_affine_dims": dims_text,
            "fine_grained_prefetch": self.fine_grained_prefetch,
            "runtime_addressing_mode_switching": self.runtime_addressing_mode_switching,
            "on_the_fly_data_manipulation": self.on_the_fly_data_manipulation,
        }


@dataclass(frozen=True)
class OverheadProfile:
    """Share of the whole accelerator system used by data movement."""

    area_percent: Optional[float]
    power_percent: Optional[float]
    source: str = "paper Fig. 10 (right)"


class DataMovementSolution:
    """A state-of-the-art data movement solution / accelerator."""

    #: Display name (matching the paper's Table I column headers).
    name: str = "unnamed"
    #: Publication reference, for reports.
    reference: str = ""

    @property
    def slug(self) -> str:
        """Registry identifier of this model.

        ``BASELINE_REGISTRY`` stamps its authoritative key onto every model
        it instantiates; models built directly fall back to a slug derived
        from the display name.
        """
        assigned = getattr(self, "_slug", None)
        if assigned is not None:
            return assigned
        text = self.name.lower()
        for old, new in ((" (", "-"), (")", ""), (" ", "-"), ("[", ""), ("]", ""), (".", "")):
            text = text.replace(old, new)
        return text

    def feature_profile(self) -> FeatureProfile:
        raise NotImplementedError

    def overhead_profile(self) -> Optional[OverheadProfile]:
        """Data-movement area/power share, if the literature reports it."""
        return None

    # ------------------------------------------------------------------
    # Performance model (only the Fig. 10 throughput baselines implement it).
    # ------------------------------------------------------------------
    @property
    def has_performance_model(self) -> bool:
        return False

    def utilization(self, workload: Workload) -> float:
        """Estimated PE-array utilization on ``workload`` (0..1)."""
        raise NotImplementedError(f"{self.name} has no performance model")

    def normalized_throughput_gops(
        self, workload: Workload, num_pes: int = 512, frequency_ghz: float = 1.0
    ) -> float:
        """Throughput normalized to a common PE count and clock (Fig. 10)."""
        return 2.0 * num_pes * frequency_ghz * self.utilization(workload)

    def analytic_cycle_model(
        self,
        workload: Workload,
        mu: int = 8,
        nu: int = 8,
        ku: int = 8,
        utilization: Optional[float] = None,
    ) -> AnalyticCycleModel:
        """Wrap the model's estimate for ``workload`` as an event-driven target.

        Requires a performance model: the total cycle count is the ideal
        compute cycle count on an ``mu×nu×ku`` PE array divided by the
        model's estimated utilization.  Callers that already evaluated the
        model pass ``utilization`` to avoid a second evaluation.
        """
        if utilization is None:
            utilization = self.utilization(workload)  # raises without a model
        ideal = workload.ideal_compute_cycles(mu, nu, ku)
        total = max(1, int(round(ideal / max(utilization, 1e-9))))
        return AnalyticCycleModel(
            name=f"{self.slug}:{workload.name}", total_cycles=total
        )

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "name": self.name,
            "slug": self.slug,
            "reference": self.reference,
            "has_performance_model": self.has_performance_model,
        }
        data.update(self.feature_profile().as_dict())
        overhead = self.overhead_profile()
        if overhead is not None:
            data["data_movement_area_percent"] = overhead.area_percent
            data["data_movement_power_percent"] = overhead.power_percent
        return data
