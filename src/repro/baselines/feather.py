"""Behavioural performance model of FEATHER.

FEATHER [Tong et al., ISCA 2024] couples a flexible PE array (NEST) with a
data-reordering network (BIRRD) that performs layout conversion on the fly,
giving it high utilization across dataflows — it is the closest competitor in
the paper's Figure 10, where the DataMaestro-boosted core is only 1.05–1.2×
faster.  Its remaining losses come from reordering-pipeline overheads per
tile and from dimension padding on its native tile.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils.packing import ceil_div
from ..workloads.spec import ConvWorkload, Workload
from .base import DataMovementSolution, FeatureProfile, OverheadProfile
from .gemmini import workload_as_gemm


@dataclass(frozen=True)
class FeatherParameters:
    native_tile: int = 16
    gemm_base_utilization: float = 0.95
    conv_base_utilization: float = 0.90
    reorder_overhead_per_tile_cycles: float = 6.0
    reduction_cycles_per_tile: float = 64.0


class FeatherModel(DataMovementSolution):
    """FEATHER: reconfigurable accelerator with on-chip data reordering."""

    name = "FEATHER"
    reference = "Tong et al., 'FEATHER', ISCA 2024"

    def __init__(self, params: FeatherParameters = FeatherParameters()):
        self.params = params

    def feature_profile(self) -> FeatureProfile:
        return FeatureProfile(
            open_source=True,
            reusable_design=False,
            decoupled_access_execute=False,
            programmable_affine_dims=2,
            fine_grained_prefetch=False,
            runtime_addressing_mode_switching=False,
            on_the_fly_data_manipulation=True,
        )

    def overhead_profile(self) -> OverheadProfile:
        return OverheadProfile(area_percent=8.9, power_percent=None)

    @property
    def has_performance_model(self) -> bool:
        return True

    def utilization(self, workload: Workload) -> float:
        p = self.params
        m, n, _ = workload_as_gemm(workload)
        padding_efficiency = (m * n) / (
            ceil_div(m, p.native_tile)
            * p.native_tile
            * ceil_div(n, p.native_tile)
            * p.native_tile
        )
        base = (
            p.conv_base_utilization
            if isinstance(workload, ConvWorkload)
            else p.gemm_base_utilization
        )
        pipeline_efficiency = p.reduction_cycles_per_tile / (
            p.reduction_cycles_per_tile + p.reorder_overhead_per_tile_cycles
        )
        return max(0.0, min(1.0, base * pipeline_efficiency * padding_efficiency))
