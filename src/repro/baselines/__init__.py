"""State-of-the-art comparator models for Table I and Figure 10."""

from typing import Dict, List

from .base import (
    TABLE1_FEATURES,
    DataMovementSolution,
    FeatureProfile,
    OverheadProfile,
)
from .bitwave import BitWaveModel, BitWaveParameters
from .datamaestro_profile import DataMaestroSolution
from .feather import FeatherModel, FeatherParameters
from .gemmini import GemminiModel, GemminiParameters, workload_as_gemm
from .streaming import (
    BuffetModel,
    HwpeModel,
    SoftbrainModel,
    SparseProgrammableDataflowModel,
    SsrModel,
)


def table1_solutions() -> List[DataMovementSolution]:
    """All solutions compared in Table I, in the paper's column order."""
    return [
        GemminiModel("OS"),
        BitWaveModel(),
        SparseProgrammableDataflowModel(),
        FeatherModel(),
        SsrModel(),
        HwpeModel(),
        BuffetModel(),
        SoftbrainModel(),
        DataMaestroSolution(),
    ]


def throughput_baselines() -> List[DataMovementSolution]:
    """The accelerators compared in Fig. 10 (left), excluding DataMaestro."""
    return [GemminiModel("OS"), GemminiModel("WS"), BitWaveModel(), FeatherModel()]


def overhead_comparison() -> Dict[str, OverheadProfile]:
    """The Fig. 10 (right) data-movement area/power share table."""
    comparison: Dict[str, OverheadProfile] = {}
    for solution in (BuffetModel(), SoftbrainModel(), BitWaveModel(), FeatherModel()):
        profile = solution.overhead_profile()
        if profile is not None:
            comparison[solution.name] = profile
    return comparison


__all__ = [
    "TABLE1_FEATURES",
    "DataMovementSolution",
    "FeatureProfile",
    "OverheadProfile",
    "GemminiModel",
    "GemminiParameters",
    "BitWaveModel",
    "BitWaveParameters",
    "FeatherModel",
    "FeatherParameters",
    "SsrModel",
    "HwpeModel",
    "BuffetModel",
    "SoftbrainModel",
    "SparseProgrammableDataflowModel",
    "DataMaestroSolution",
    "workload_as_gemm",
    "table1_solutions",
    "throughput_baselines",
    "overhead_comparison",
]
