"""State-of-the-art comparator models for Table I and Figure 10.

Every comparator registers in :data:`BASELINE_REGISTRY` (slug → factory),
which is the single source of truth consumed by the Table I / Fig. 10
experiment modules and by the :mod:`repro.runtime` backend registry — no
caller enumerates model classes by hand.
"""

from typing import Callable, Dict, List

from .base import (
    TABLE1_FEATURES,
    AnalyticCycleModel,
    DataMovementSolution,
    FeatureProfile,
    OverheadProfile,
)
from .bitwave import BitWaveModel, BitWaveParameters
from .datamaestro_profile import DataMaestroSolution
from .feather import FeatherModel, FeatherParameters
from .gemmini import GemminiModel, GemminiParameters, workload_as_gemm
from .streaming import (
    BuffetModel,
    HwpeModel,
    SoftbrainModel,
    SparseProgrammableDataflowModel,
    SsrModel,
)

#: All comparator models, keyed by slug.  Insertion order matters: it is the
#: Fig. 10 ordering for the models that have performance models.
BASELINE_REGISTRY: Dict[str, Callable[[], DataMovementSolution]] = {
    "gemmini-os": lambda: GemminiModel("OS"),
    "gemmini-ws": lambda: GemminiModel("WS"),
    "bitwave": BitWaveModel,
    "feather": FeatherModel,
    "ssr": SsrModel,
    "hwpe": HwpeModel,
    "buffet": BuffetModel,
    "softbrain": SoftbrainModel,
    "sparse-dataflow": SparseProgrammableDataflowModel,
    "datamaestro": DataMaestroSolution,
}

#: Table I column order (paper layout), expressed as registry slugs.
TABLE1_ORDER = (
    "gemmini-os",
    "bitwave",
    "sparse-dataflow",
    "feather",
    "ssr",
    "hwpe",
    "buffet",
    "softbrain",
    "datamaestro",
)

#: The solutions whose data-movement overhead the paper compiled (Fig. 10
#: right), in presentation order.
OVERHEAD_ORDER = ("buffet", "softbrain", "bitwave", "feather")


def create_baseline(slug: str) -> DataMovementSolution:
    """Instantiate one registered comparator model by slug."""
    try:
        factory = BASELINE_REGISTRY[slug]
    except KeyError:
        raise KeyError(
            f"unknown baseline {slug!r}; available: {sorted(BASELINE_REGISTRY)}"
        ) from None
    model = factory()
    # Stamp the registry key so describe()/slug round-trips through
    # create_baseline() and the CLI's baseline:<slug> backend names.
    model._slug = slug
    return model


def table1_solutions() -> List[DataMovementSolution]:
    """All solutions compared in Table I, in the paper's column order."""
    return [create_baseline(slug) for slug in TABLE1_ORDER]


def throughput_baselines() -> List[DataMovementSolution]:
    """The accelerators compared in Fig. 10 (left), excluding DataMaestro.

    Derived from the registry by capability: every model that implements a
    performance model, except DataMaestro itself (whose utilization is
    measured, not modelled).
    """
    baselines = []
    for slug in BASELINE_REGISTRY:
        if slug == "datamaestro":
            continue
        model = create_baseline(slug)
        if model.has_performance_model:
            baselines.append(model)
    return baselines


def overhead_comparison() -> Dict[str, OverheadProfile]:
    """The Fig. 10 (right) data-movement area/power share table."""
    comparison: Dict[str, OverheadProfile] = {}
    for slug in OVERHEAD_ORDER:
        solution = create_baseline(slug)
        profile = solution.overhead_profile()
        if profile is not None:
            comparison[solution.name] = profile
    return comparison


def describe_baselines() -> Dict[str, Dict[str, object]]:
    """Capability summary of every registered model (slug → describe())."""
    return {slug: create_baseline(slug).describe() for slug in BASELINE_REGISTRY}


__all__ = [
    "TABLE1_FEATURES",
    "TABLE1_ORDER",
    "OVERHEAD_ORDER",
    "BASELINE_REGISTRY",
    "AnalyticCycleModel",
    "DataMovementSolution",
    "FeatureProfile",
    "OverheadProfile",
    "GemminiModel",
    "GemminiParameters",
    "BitWaveModel",
    "BitWaveParameters",
    "FeatherModel",
    "FeatherParameters",
    "SsrModel",
    "HwpeModel",
    "BuffetModel",
    "SoftbrainModel",
    "SparseProgrammableDataflowModel",
    "DataMaestroSolution",
    "workload_as_gemm",
    "create_baseline",
    "describe_baselines",
    "table1_solutions",
    "throughput_baselines",
    "overhead_comparison",
]
