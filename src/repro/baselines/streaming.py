"""Feature/overhead profiles of the remaining Table I data-movement solutions.

These comparators appear in Table I (feature comparison) and — where the
literature reports it — in Fig. 10 (right) (data-movement area/power share).
The paper does not include them in the throughput comparison, so they expose
no performance model.
"""

from __future__ import annotations

from .base import DataMovementSolution, FeatureProfile, OverheadProfile


class SsrModel(DataMovementSolution):
    """Stream Semantic Registers: ISA-level streaming for single-issue cores."""

    name = "SSR"
    reference = "Schuiki et al., 'Stream Semantic Registers', IEEE TC 2020"

    def feature_profile(self) -> FeatureProfile:
        return FeatureProfile(
            open_source=True,
            reusable_design=False,
            decoupled_access_execute=True,
            programmable_affine_dims=4,
            fine_grained_prefetch=False,
            runtime_addressing_mode_switching=False,
            on_the_fly_data_manipulation=False,
        )


class HwpeModel(DataMovementSolution):
    """Hardware Processing Engines: PULP-style accelerator streamer wrapper."""

    name = "HWPE"
    reference = "Conti et al., 'HWPE 2.0 documentation', 2014"

    def feature_profile(self) -> FeatureProfile:
        return FeatureProfile(
            open_source=True,
            reusable_design=True,
            decoupled_access_execute=True,
            programmable_affine_dims=3,
            fine_grained_prefetch=False,
            runtime_addressing_mode_switching=False,
            on_the_fly_data_manipulation=False,
        )


class BuffetModel(DataMovementSolution):
    """Buffets: composable storage idiom for explicit data orchestration."""

    name = "Buffet"
    reference = "Pellauer et al., 'Buffets', ASPLOS 2019"

    def feature_profile(self) -> FeatureProfile:
        return FeatureProfile(
            open_source=True,
            reusable_design=True,
            decoupled_access_execute=True,
            programmable_affine_dims=2,
            fine_grained_prefetch=True,
            runtime_addressing_mode_switching=False,
            on_the_fly_data_manipulation=False,
        )

    def overhead_profile(self) -> OverheadProfile:
        return OverheadProfile(area_percent=2.0, power_percent=14.0)


class SoftbrainModel(DataMovementSolution):
    """Softbrain / stream-dataflow acceleration."""

    name = "Softbrain"
    reference = "Nowatzki et al., 'Stream-Dataflow Acceleration', ISCA 2017"

    def feature_profile(self) -> FeatureProfile:
        return FeatureProfile(
            open_source=False,
            reusable_design=False,
            decoupled_access_execute=True,
            programmable_affine_dims=2,
            fine_grained_prefetch=False,
            runtime_addressing_mode_switching=False,
            on_the_fly_data_manipulation=False,
        )

    def overhead_profile(self) -> OverheadProfile:
        return OverheadProfile(area_percent=4.3, power_percent=15.3)


class SparseProgrammableDataflowModel(DataMovementSolution):
    """Energy/bandwidth-efficient sparse programmable dataflow accelerator [3]."""

    name = "Schneider et al. [3]"
    reference = "Schneider et al., IEEE TCAS-I 2024"

    def feature_profile(self) -> FeatureProfile:
        return FeatureProfile(
            open_source=False,
            reusable_design=False,
            decoupled_access_execute=False,
            programmable_affine_dims=2,
            fine_grained_prefetch=False,
            runtime_addressing_mode_switching=False,
            on_the_fly_data_manipulation=False,
        )
