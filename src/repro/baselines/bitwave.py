"""Behavioural performance model of BitWave.

BitWave [Shi et al., HPCA 2024] is a bit-serial CNN accelerator with
dedicated per-operand buffers and dataflow optimizations specialised for
convolutional layers.  The paper under reproduction uses it as the example of
a *non-reusable* data-movement design: excellent utilization on the
convolution shapes it was tuned for, noticeably lower efficiency on plain
GeMM workloads that dominate Transformers.

The model captures exactly that: a high base utilization for convolutions
(degrading with kernel size and stride because its line buffers are sized for
small kernels), a lower base utilization for GeMM, and the usual tiling
padding efficiency for dimensions that do not fill its native tile.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils.packing import ceil_div
from ..workloads.spec import ConvWorkload, GemmWorkload, Workload
from .base import DataMovementSolution, FeatureProfile, OverheadProfile
from .gemmini import workload_as_gemm


@dataclass(frozen=True)
class BitWaveParameters:
    """Calibration constants of the behavioural model."""

    native_tile_m: int = 16
    native_tile_n: int = 32
    conv_3x3_utilization: float = 0.82
    conv_large_kernel_utilization: float = 0.58
    conv_strided_penalty: float = 0.88
    gemm_utilization: float = 0.42


class BitWaveModel(DataMovementSolution):
    """BitWave: conv-specialised accelerator with dedicated buffers."""

    name = "BitWave"
    reference = "Shi et al., 'BitWave', HPCA 2024"

    def __init__(self, params: BitWaveParameters = BitWaveParameters()):
        self.params = params

    def feature_profile(self) -> FeatureProfile:
        return FeatureProfile(
            open_source=False,
            reusable_design=False,
            decoupled_access_execute=False,
            programmable_affine_dims=0,
            fine_grained_prefetch=False,
            runtime_addressing_mode_switching=False,
            on_the_fly_data_manipulation=False,
        )

    def overhead_profile(self) -> OverheadProfile:
        return OverheadProfile(area_percent=11.9, power_percent=25.5)

    @property
    def has_performance_model(self) -> bool:
        return True

    def utilization(self, workload: Workload) -> float:
        p = self.params
        m, n, _ = workload_as_gemm(workload)
        padding_efficiency = (m * n) / (
            ceil_div(m, p.native_tile_m)
            * p.native_tile_m
            * ceil_div(n, p.native_tile_n)
            * p.native_tile_n
        )
        if isinstance(workload, ConvWorkload):
            if workload.kernel_h <= 3 and workload.kernel_w <= 3:
                base = p.conv_3x3_utilization
            else:
                base = p.conv_large_kernel_utilization
            if workload.is_strided:
                base *= p.conv_strided_penalty
        elif isinstance(workload, GemmWorkload):
            base = p.gemm_utilization
        else:
            raise TypeError(f"unsupported workload type {type(workload)!r}")
        return max(0.0, min(1.0, base * padding_efficiency))
