"""N-dimensional affine Address Generation Unit (paper §III-B, Fig. 2(d)).

The AGU turns the nested-loop description of a data access pattern

```
for xt[Dt-1] in range(Bt[Dt-1]):
  ...
    for xt[0] in range(Bt[0]):            # one temporal address per cycle
      parfor xs[Ds-1] in range(Bs[Ds-1]):
        ...
          parfor xs[0] in range(Bs[0]):   # N_C spatial addresses per cycle
            addr = Addr_B + Σ St[i]*xt[i] + Σ Ss[j]*xs[j]
```

into a stream of *address bundles*: one bundle per temporal step, each bundle
holding one address per channel (the spatial unrolling).  Dimension index 0
is the innermost loop, matching ``Bt[1]`` in the paper's 1-based notation.

The hardware avoids multipliers on the per-cycle path by keeping a *dual
counter* per temporal dimension — a bound counter holding the loop index and
a stride counter accumulating the address offset — and summing the per-
dimension offsets with an adder tree.  :class:`TemporalAddressGenerator`
models exactly that structure; a multiplication-based reference
(:func:`reference_address_sequence`) is provided so the property-based tests
can prove the two agree for arbitrary configurations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple


@dataclass(frozen=True)
class AddressBundle:
    """All channel addresses generated for one temporal step."""

    temporal_index: Tuple[int, ...]
    temporal_address: int
    addresses: Tuple[int, ...]
    step: int
    last: bool


class TemporalAddressGenerator:
    """Dual-counter temporal address generator (one address per cycle)."""

    def __init__(
        self,
        bounds: Sequence[int],
        strides: Sequence[int],
        base_address: int = 0,
    ) -> None:
        if len(bounds) != len(strides):
            raise ValueError("bounds and strides must have the same length")
        if not bounds:
            raise ValueError("at least one temporal dimension is required")
        if any(b <= 0 for b in bounds):
            raise ValueError(f"temporal bounds must be positive, got {bounds}")
        self.bounds = tuple(int(b) for b in bounds)
        self.strides = tuple(int(s) for s in strides)
        self.base_address = int(base_address)
        self.total_iterations = math.prod(self.bounds)
        self.reset()

    def reset(self) -> None:
        """Return to the first iteration of every loop."""
        dims = len(self.bounds)
        # Bound counters (loop indices) and stride counters (address offsets).
        self._indices: List[int] = [0] * dims
        self._offsets: List[int] = [0] * dims
        self._steps_generated = 0
        self._exhausted = False

    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        """True once every temporal iteration has been produced."""
        return self._exhausted

    @property
    def steps_generated(self) -> int:
        return self._steps_generated

    def current_indices(self) -> Tuple[int, ...]:
        return tuple(self._indices)

    def current_address(self) -> int:
        """Adder-tree output: base plus the per-dimension offsets."""
        return self.base_address + sum(self._offsets)

    def advance(self) -> None:
        """Move to the next temporal iteration (ripple-carry over dims)."""
        if self._exhausted:
            raise RuntimeError("advance() called on an exhausted temporal AGU")
        self._steps_generated += 1
        for dim in range(len(self.bounds)):
            self._indices[dim] += 1
            self._offsets[dim] += self.strides[dim]
            if self._indices[dim] < self.bounds[dim]:
                return
            # Overflow: clear this dimension and carry into the next one.
            self._indices[dim] = 0
            self._offsets[dim] = 0
        self._exhausted = True


    # ------------------------------------------------------------------
    # Batch evaluation / fast-forward (macro-step fast path, repro.engine).
    # ------------------------------------------------------------------
    def address_batch(self, start_step: int, count: int):
        """Temporal addresses for flat steps ``[start_step, start_step+count)``.

        Vectorized (numpy) mixed-radix evaluation of the nested loops; the
        result is bit-identical to stepping the dual counters ``count``
        times.  Steps beyond :attr:`total_iterations` are not representable
        and raise ``ValueError``.
        """
        import numpy as np

        if start_step < 0 or start_step + count > self.total_iterations:
            raise ValueError(
                f"step window [{start_step}, {start_step + count}) outside "
                f"[0, {self.total_iterations})"
            )
        steps = np.arange(start_step, start_step + count, dtype=np.int64)
        addresses = np.full(count, self.base_address, dtype=np.int64)
        radix = 1
        for bound, stride in zip(self.bounds, self.strides):
            addresses += (steps // radix) % bound * stride
            radix *= bound
        return addresses

    def fast_forward(self, steps: int) -> None:
        """Jump ``steps`` iterations ahead, exactly as ``steps`` advances.

        Leaves the dual counters (and :attr:`exhausted`) in the same state a
        loop of :meth:`advance` calls would: on full exhaustion every
        counter reads zero, mirroring the final ripple-carry overflow.
        """
        if steps < 0:
            raise ValueError("cannot fast-forward a negative number of steps")
        if steps == 0:
            return
        target = self._steps_generated + steps
        if self._exhausted or target > self.total_iterations:
            raise RuntimeError(
                f"fast_forward({steps}) overruns the temporal loop nest "
                f"({self._steps_generated}/{self.total_iterations})"
            )
        self._steps_generated = target
        if target == self.total_iterations:
            self._indices = [0] * len(self.bounds)
            self._offsets = [0] * len(self.bounds)
            self._exhausted = True
            return
        remainder = target
        for dim, bound in enumerate(self.bounds):
            index = remainder % bound
            remainder //= bound
            self._indices[dim] = index
            self._offsets[dim] = index * self.strides[dim]


class SpatialAddressGenerator:
    """Spatial AGU: expands one temporal address into per-channel addresses."""

    def __init__(self, bounds: Sequence[int], strides: Sequence[int]) -> None:
        if len(bounds) != len(strides):
            raise ValueError("spatial bounds and strides must match in length")
        if not bounds:
            raise ValueError("at least one spatial dimension is required")
        if any(b <= 0 for b in bounds):
            raise ValueError(f"spatial bounds must be positive, got {bounds}")
        self.bounds = tuple(int(b) for b in bounds)
        self.strides = tuple(int(s) for s in strides)
        self.num_points = math.prod(self.bounds)
        self._offsets = tuple(self._enumerate_offsets())

    def _enumerate_offsets(self) -> Iterator[int]:
        """Enumerate spatial offsets with dimension 0 innermost."""
        indices = [0] * len(self.bounds)
        for _ in range(self.num_points):
            yield sum(i * s for i, s in zip(indices, self.strides))
            for dim in range(len(self.bounds)):
                indices[dim] += 1
                if indices[dim] < self.bounds[dim]:
                    break
                indices[dim] = 0

    @property
    def offsets(self) -> Tuple[int, ...]:
        """Per-channel offsets added to every temporal address."""
        return self._offsets

    def expand(self, temporal_address: int, count: int = 0) -> Tuple[int, ...]:
        """Return the channel addresses for ``temporal_address``.

        ``count`` limits the expansion to the first ``count`` channels (used
        when the Broadcaster extension narrows the memory-side fetch).
        """
        offsets = self._offsets if count in (0, self.num_points) else self._offsets[:count]
        return tuple(temporal_address + offset for offset in offsets)


class AddressGenerationUnit:
    """Complete AGU: temporal dual counters + spatial expansion."""

    def __init__(
        self,
        temporal_bounds: Sequence[int],
        temporal_strides: Sequence[int],
        spatial_bounds: Sequence[int],
        spatial_strides: Sequence[int],
        base_address: int = 0,
    ) -> None:
        self.temporal = TemporalAddressGenerator(
            temporal_bounds, temporal_strides, base_address
        )
        self.spatial = SpatialAddressGenerator(spatial_bounds, spatial_strides)

    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        return self.temporal.exhausted

    @property
    def total_bundles(self) -> int:
        return self.temporal.total_iterations

    @property
    def bundles_generated(self) -> int:
        return self.temporal.steps_generated

    @property
    def remaining_bundles(self) -> int:
        """Bundles not yet produced — ``0`` means "all addresses generated".

        The event-driven scheduler (:mod:`repro.engine`) uses this as the
        AGU's contribution to the next-event protocol: an exhausted AGU can
        never wake its streamer again, so the streamer reports no
        self-scheduled events once this reaches zero.
        """
        return self.temporal.total_iterations - self.temporal.steps_generated

    def reset(self) -> None:
        self.temporal.reset()

    def next_bundle(self, active_channels: int = 0) -> AddressBundle:
        """Produce the next address bundle and advance the temporal AGU."""
        if self.temporal.exhausted:
            raise RuntimeError("next_bundle() called on an exhausted AGU")
        temporal_address = self.temporal.current_address()
        indices = self.temporal.current_indices()
        step = self.temporal.steps_generated
        addresses = self.spatial.expand(temporal_address, active_channels)
        self.temporal.advance()
        return AddressBundle(
            temporal_index=indices,
            temporal_address=temporal_address,
            addresses=addresses,
            step=step,
            last=self.temporal.exhausted,
        )

    def iter_bundles(self, active_channels: int = 0) -> Iterator[AddressBundle]:
        """Generate every remaining bundle (used by tests and pre-passes)."""
        while not self.temporal.exhausted:
            yield self.next_bundle(active_channels)

    # ------------------------------------------------------------------
    # Batch evaluation / fast-forward (macro-step fast path, repro.engine).
    # ------------------------------------------------------------------
    def address_matrix(self, start_step: int, count: int, active_channels: int = 0):
        """Per-channel addresses for bundle steps ``[start, start+count)``.

        Returns an ``int64`` array of shape ``(count, channels)`` whose row
        ``i`` equals ``next_bundle(active_channels).addresses`` for step
        ``start_step + i`` — the vectorized counterpart of the per-cycle
        bundle stream the macro-step planner evaluates en bloc.
        """
        import numpy as np

        temporal = self.temporal.address_batch(start_step, count)
        offsets = self.spatial.offsets
        if active_channels not in (0, self.spatial.num_points):
            offsets = offsets[:active_channels]
        return temporal[:, None] + np.asarray(offsets, dtype=np.int64)[None, :]

    def fast_forward(self, steps: int) -> None:
        """Advance the temporal loop nest by ``steps`` bundles at once."""
        self.temporal.fast_forward(steps)


# ----------------------------------------------------------------------
# Multiplication-based reference implementation (for verification).
# ----------------------------------------------------------------------
def reference_temporal_addresses(
    bounds: Sequence[int], strides: Sequence[int], base_address: int = 0
) -> List[int]:
    """Temporal address sequence computed with explicit multiplications."""
    if len(bounds) != len(strides):
        raise ValueError("bounds and strides must have the same length")
    addresses: List[int] = []
    total = math.prod(bounds) if bounds else 0
    for flat in range(total):
        remainder = flat
        address = base_address
        for bound, stride in zip(bounds, strides):
            index = remainder % bound
            remainder //= bound
            address += index * stride
        addresses.append(address)
    return addresses


def reference_address_sequence(
    temporal_bounds: Sequence[int],
    temporal_strides: Sequence[int],
    spatial_bounds: Sequence[int],
    spatial_strides: Sequence[int],
    base_address: int = 0,
) -> List[Tuple[int, ...]]:
    """Full reference sequence: one tuple of channel addresses per step."""
    spatial = SpatialAddressGenerator(spatial_bounds, spatial_strides)
    temporal = reference_temporal_addresses(
        temporal_bounds, temporal_strides, base_address
    )
    return [spatial.expand(address) for address in temporal]
