"""Address remapper: runtime addressing-mode switching (paper §III-D).

The remapper sits between the AGU and the memory interface controllers.  It
turns the logical byte address produced by the AGU into a physical
(bank, wordline, byte offset) location, according to the addressing mode the
host selected at runtime through the ``RS`` CSR.

At design time the remapper is instantiated with the set of bank-group sizes
it must support (``N_BG`` in Table II); each option corresponds to one bit
permutation of the address (Fig. 5(e)) and the runtime selection is just a
multiplexer across them — which is why the paper reports a negligible 0.49%
area cost for this feature.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..memory.addressing import (
    AddressingMode,
    BankGeometry,
    BankLocation,
    decode_address,
    mode_for_group_size,
    normalize_group_size,
)


class AddressRemapper:
    """Runtime-selectable logical-to-physical address mapping."""

    def __init__(
        self, geometry: BankGeometry, group_size_options: Sequence[int]
    ) -> None:
        self.geometry = geometry
        options = []
        for option in group_size_options:
            options.append(normalize_group_size(geometry, option))
        if not options:
            options = [geometry.num_banks]
        # Deduplicate while keeping a deterministic order (largest first so
        # index 0 — the reset value of RS — is fully interleaved).
        unique = sorted(set(options), reverse=True)
        self.group_size_options: Tuple[int, ...] = tuple(unique)
        self._selected_index = 0

    # ------------------------------------------------------------------
    # Runtime selection (the RS CSR).
    # ------------------------------------------------------------------
    @property
    def selected_index(self) -> int:
        return self._selected_index

    @property
    def selected_group_size(self) -> int:
        return self.group_size_options[self._selected_index]

    @property
    def selected_mode(self) -> AddressingMode:
        return mode_for_group_size(self.geometry, self.selected_group_size)

    def select_index(self, index: int) -> None:
        """Program RS directly by option index."""
        if not 0 <= index < len(self.group_size_options):
            raise ValueError(
                f"RS index {index} out of range "
                f"(options={self.group_size_options})"
            )
        self._selected_index = index

    def select_group_size(self, group_size: int) -> None:
        """Program RS by the desired bank-group size."""
        group_size = normalize_group_size(self.geometry, group_size)
        try:
            self._selected_index = self.group_size_options.index(group_size)
        except ValueError as exc:
            raise ValueError(
                f"group size {group_size} was not instantiated at design time "
                f"(options={self.group_size_options})"
            ) from exc

    def index_for_group_size(self, group_size: int) -> int:
        """Return the RS index implementing ``group_size`` (for CSR encoding)."""
        group_size = normalize_group_size(self.geometry, group_size)
        if group_size not in self.group_size_options:
            raise ValueError(
                f"group size {group_size} not available "
                f"(options={self.group_size_options})"
            )
        return self.group_size_options.index(group_size)

    # ------------------------------------------------------------------
    # Address translation.
    # ------------------------------------------------------------------
    def decode(self, address: int) -> BankLocation:
        """Translate a logical byte address under the selected mode."""
        return decode_address(address, self.geometry, self.selected_group_size)

    def decode_batch(self, addresses):
        """Vectorized :meth:`decode` over an address array.

        Returns ``(banks, lines, byte_offsets)`` int64 arrays shaped like
        ``addresses`` (macro-step fast path — one numpy evaluation instead
        of one :class:`BankLocation` per address).
        """
        from ..memory.addressing import decode_address_batch

        return decode_address_batch(
            addresses, self.geometry, self.selected_group_size
        )

    def decode_with_group_size(self, address: int, group_size: int) -> BankLocation:
        """Translate under an explicit group size (compiler/DMA use)."""
        return decode_address(address, self.geometry, group_size)

    def available_modes(self) -> Dict[int, AddressingMode]:
        """Map every RS index to its addressing mode (for reports)."""
        return {
            index: mode_for_group_size(self.geometry, group_size)
            for index, group_size in enumerate(self.group_size_options)
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AddressRemapper(options={self.group_size_options}, "
            f"selected={self.selected_group_size})"
        )
