"""DataMaestro streaming engine top level (paper §III-A, Fig. 2(a)).

A :class:`DataMaestro` bridges the multi-banked scratchpad and one accelerator
port.  In **read mode** it prefetches data from memory into its per-channel
data FIFOs, assembles the channel words into one wide word, pushes that word
through the (optional) datapath-extension cascade and presents it to the
accelerator with valid/ready semantics.  In **write mode** it accepts wide
words from the accelerator, splits them across channels and drains them to
memory.

The per-cycle methods are called by the surrounding system model in a fixed
phase order (see :class:`repro.system.system.AcceleratorSystem`):

1. :meth:`collect_responses` — drain matured memory responses into FIFOs;
2. the accelerator consumes/produces wide words via
   :meth:`output_valid`/:meth:`pop_output` and
   :meth:`input_ready`/:meth:`push_input`;
3. :meth:`generate_addresses` — the AGU produces at most one address bundle
   per cycle (gated by the prefetch mode);
4. :meth:`issue_requests` — every channel's MIC issues at most one memory
   request, subject to its Outstanding-Request-Manager credits.

Disabling ``fine_grained_prefetch`` reproduces the ablation baseline: the AGU
only produces the next bundle once the previous word has been fully consumed
and every channel is idle, so memory latency and bank conflicts hit the
accelerator directly instead of being hidden by the FIFOs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..memory.addressing import BankGeometry
from ..memory.subsystem import MemorySubsystem
from ..sim.stats import StreamerStats
from .agu import AddressGenerationUnit
from .channel import ChannelAddress, StreamChannel
from .extensions import ExtensionPipeline
from .params import StreamerDesign, StreamerMode, StreamerRuntimeConfig
from .remapper import AddressRemapper


class DataMaestro:
    """One read-mode or write-mode DataMaestro streaming engine."""

    def __init__(
        self,
        design: StreamerDesign,
        geometry: BankGeometry,
        group_size_options: Sequence[int] = (),
    ) -> None:
        self.design = design
        self.name = design.name
        self.remapper = AddressRemapper(
            geometry, list(group_size_options) or [geometry.num_banks]
        )
        self.channels: List[StreamChannel] = [
            StreamChannel(design.name, index, design)
            for index in range(design.num_channels)
        ]
        self.extensions = ExtensionPipeline.from_specs(design.extensions)
        self.agu: Optional[AddressGenerationUnit] = None
        self.runtime: Optional[StreamerRuntimeConfig] = None
        self.prefetch_enabled = True
        self.active_channels = design.num_channels
        self.words_streamed = 0
        self.bundles_generated = 0
        self._popped_this_cycle = False

    # ------------------------------------------------------------------
    # Configuration (performed by the host through CSR writes).
    # ------------------------------------------------------------------
    def configure(
        self,
        runtime: StreamerRuntimeConfig,
        prefetch_enabled: bool = True,
    ) -> None:
        """Program the streamer for one kernel launch."""
        runtime.validate_against(self.design)
        self.runtime = runtime
        self.prefetch_enabled = bool(prefetch_enabled)
        self.active_channels = runtime.active_channels or self.design.num_channels
        self.remapper.select_group_size(runtime.bank_group_size)
        self.agu = AddressGenerationUnit(
            temporal_bounds=runtime.temporal_bounds,
            temporal_strides=runtime.temporal_strides,
            spatial_bounds=self.design.spatial_bounds,
            spatial_strides=runtime.spatial_strides,
            base_address=runtime.base_address,
        )
        if runtime.extension_enables:
            self.extensions.set_enables(runtime.extension_enables)
        else:
            self.extensions.set_enables([True] * len(self.extensions))
        for kind, params in runtime.extension_params_dict().items():
            if self.extensions.stage(kind) is not None:
                self.extensions.configure_stage(kind, **dict(params))
        for channel in self.channels:
            channel.reset()
        self.words_streamed = 0
        self.bundles_generated = 0
        self._popped_this_cycle = False

    # ------------------------------------------------------------------
    # Status.
    # ------------------------------------------------------------------
    @property
    def is_read(self) -> bool:
        return self.design.mode is StreamerMode.READ

    @property
    def is_write(self) -> bool:
        return self.design.mode is StreamerMode.WRITE

    @property
    def configured(self) -> bool:
        return self.agu is not None

    def _active(self) -> List[StreamChannel]:
        return self.channels[: self.active_channels]

    @property
    def busy(self) -> bool:
        """True while addresses remain or any channel still holds work."""
        if self.agu is None:
            return False
        if not self.agu.exhausted:
            return True
        return any(channel.busy for channel in self._active())

    @property
    def done(self) -> bool:
        return self.configured and not self.busy

    # ------------------------------------------------------------------
    # Phase 0: per-cycle housekeeping.
    # ------------------------------------------------------------------
    def begin_cycle(self) -> None:
        """Reset per-cycle state; called once at the start of every cycle."""
        self._popped_this_cycle = False

    # ------------------------------------------------------------------
    # Phase 1: memory responses.
    # ------------------------------------------------------------------
    def collect_responses(self, memory: MemorySubsystem) -> int:
        """Drain matured responses into the FIFOs; return the count drained."""
        collected = 0
        for channel in self._active():
            collected += channel.collect(memory)
        return collected

    # ------------------------------------------------------------------
    # Phase 2: accelerator-facing wide-word interface.
    # ------------------------------------------------------------------
    def output_valid(self) -> bool:
        """Read mode: True when every active channel has a word ready."""
        if not self.is_read or self.agu is None:
            return False
        return all(channel.output_word_available() for channel in self._active())

    def peek_output(self) -> Optional[np.ndarray]:
        """Return the wide word that :meth:`pop_output` would deliver."""
        if not self.output_valid():
            return None
        parts = [channel.data_fifo.peek() for channel in self._active()]
        return self.extensions.apply(np.concatenate(parts))

    def pop_output(self) -> np.ndarray:
        """Consume one wide word (read mode)."""
        if not self.output_valid():
            raise RuntimeError(f"{self.name}: pop_output() while output not valid")
        parts = [channel.pop_output_word() for channel in self._active()]
        self.words_streamed += 1
        self._popped_this_cycle = True
        return self.extensions.apply(np.concatenate(parts))

    def input_ready(self) -> bool:
        """Write mode: True when every active channel can accept a word."""
        if not self.is_write or self.agu is None:
            return False
        return all(channel.input_space_available() for channel in self._active())

    def push_input(self, word: np.ndarray) -> None:
        """Accept one wide word from the accelerator (write mode)."""
        if not self.input_ready():
            raise RuntimeError(f"{self.name}: push_input() while input not ready")
        payload = np.asarray(word, dtype=np.uint8).ravel()
        payload = self.extensions.apply(payload)
        width = self.design.bank_width_bytes
        expected = self.active_channels * width
        if payload.size != expected:
            raise ValueError(
                f"{self.name}: wide word must be {expected} bytes, got {payload.size}"
            )
        for index, channel in enumerate(self._active()):
            channel.push_input_word(payload[index * width : (index + 1) * width])
        self.words_streamed += 1

    # ------------------------------------------------------------------
    # Phase 3: address generation.
    # ------------------------------------------------------------------
    def _prefetch_gate_open(self) -> bool:
        """Whether the AGU may produce the next bundle this cycle."""
        active = self._active()
        if not all(channel.address_fifo.can_push() for channel in active):
            return False
        if self.prefetch_enabled or self.is_write:
            return True
        # Prefetch disabled (ablation baseline): behave like a plain data
        # mover — the next word is only requested *after* the previous one
        # has been consumed (no lookahead within the consumption cycle) and
        # every channel is completely idle, so the accelerator pays the full
        # memory round trip for every word.
        if self._popped_this_cycle:
            return False
        return all(not channel.busy for channel in active)

    def generate_addresses(self) -> bool:
        """Produce at most one address bundle; return True if one was made."""
        if self.agu is None or self.agu.exhausted:
            return False
        if not self._prefetch_gate_open():
            return False
        bundle = self.agu.next_bundle(self.active_channels)
        for channel, address in zip(self._active(), bundle.addresses):
            location = self.remapper.decode(address)
            channel.push_address(
                ChannelAddress(logical=address, location=location, step=bundle.step)
            )
        self.bundles_generated += 1
        return True

    # ------------------------------------------------------------------
    # Phase 4: request issue.
    # ------------------------------------------------------------------
    def issue_requests(self, memory: MemorySubsystem) -> int:
        """Let every active channel's MIC issue at most one request."""
        issued = 0
        for channel in self._active():
            if channel.issue(memory):
                issued += 1
        return issued

    # ------------------------------------------------------------------
    # Next-event protocol (see repro.engine).
    # ------------------------------------------------------------------
    def next_event_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle at which this streamer can act on its own.

        ``now`` when the AGU can produce a bundle this cycle or any channel's
        MIC can issue a request; ``None`` when the streamer is drained
        ("all my addresses are generated") or blocked on external input (a
        memory response, or the accelerator consuming/producing a word) —
        those wake-ups are reported by the memory subsystem and the
        accelerators respectively.
        """
        if self.agu is None:
            return None
        if self.agu.remaining_bundles and self._prefetch_gate_open():
            return now
        for channel in self._active():
            if channel.can_issue():
                return now
        return None

    def advance(self, cycles: int) -> None:
        """Bulk-apply ``cycles`` skipped cycles to the per-channel counters."""
        for channel in self._active():
            channel.advance(cycles)

    # ------------------------------------------------------------------
    # Statistics.
    # ------------------------------------------------------------------
    def statistics(self, memory: Optional[MemorySubsystem] = None) -> StreamerStats:
        stats = StreamerStats(name=self.name)
        stats.words_streamed = self.words_streamed
        for channel in self.channels:
            stats.requests_issued += channel.requests_issued
            if memory is not None:
                mem_stats = memory.requester_stats(channel.requester_id)
                stats.requests_granted += mem_stats["granted"]
                stats.bank_conflict_retries += mem_stats["retries"]
        stats.extension_words = self.extensions.statistics()
        return stats

    def channel_statistics(self) -> Dict[str, dict]:
        return {
            channel.requester_id: channel.statistics() for channel in self.channels
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "read" if self.is_read else "write"
        return (
            f"DataMaestro(name={self.name!r}, mode={mode}, "
            f"channels={self.design.num_channels}, "
            f"active={self.active_channels})"
        )
