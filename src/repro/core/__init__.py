"""DataMaestro core: AGU, channels/MIC, remapper, extensions, streamer top."""

from .agu import (
    AddressBundle,
    AddressGenerationUnit,
    SpatialAddressGenerator,
    TemporalAddressGenerator,
    reference_address_sequence,
    reference_temporal_addresses,
)
from .channel import ChannelAddress, StreamChannel
from .csr import (
    CsrAddressMap,
    decode_runtime_config,
    encode_runtime_config,
)
from .extensions import (
    Broadcaster,
    DatapathExtension,
    ExtensionPipeline,
    Transposer,
    create_extension,
    register_extension,
    registered_extensions,
)
from .params import (
    ABLATION_STEPS,
    ExtensionSpec,
    FeatureSet,
    MemoryDesign,
    StreamerDesign,
    StreamerMode,
    StreamerRuntimeConfig,
    ablation_feature_sets,
    validate_streamer_designs,
)
from .remapper import AddressRemapper
from .streamer import DataMaestro

__all__ = [
    "AddressBundle",
    "AddressGenerationUnit",
    "SpatialAddressGenerator",
    "TemporalAddressGenerator",
    "reference_address_sequence",
    "reference_temporal_addresses",
    "ChannelAddress",
    "StreamChannel",
    "CsrAddressMap",
    "encode_runtime_config",
    "decode_runtime_config",
    "DatapathExtension",
    "Transposer",
    "Broadcaster",
    "ExtensionPipeline",
    "create_extension",
    "register_extension",
    "registered_extensions",
    "ExtensionSpec",
    "FeatureSet",
    "MemoryDesign",
    "StreamerDesign",
    "StreamerMode",
    "StreamerRuntimeConfig",
    "ABLATION_STEPS",
    "ablation_feature_sets",
    "validate_streamer_designs",
    "AddressRemapper",
    "DataMaestro",
]
