"""Customizable datapath extensions (paper §III-E, Fig. 2(c)).

Datapath extensions sit between the channel data FIFOs and the accelerator
port.  They operate on the assembled wide word, can be cascaded (the output
of one extension feeds the next), and every extension automatically gets a
runtime bypass so the host can disable it per kernel.

Two extensions from the paper's evaluation system are provided:

* :class:`Transposer` — on-the-fly transposition of the tile carried by a
  wide word, used to stream transposed-GeMM operands without a software
  transpose pass through the scratchpad;
* :class:`Broadcaster` — duplicates the data of a narrow fetch across all
  channels, used when the same values (e.g. per-output-channel quantization
  scales or bias/init rows) are needed by every PE row, so the duplicated
  tensor never has to be materialised in memory.

User-defined extensions register themselves with :func:`register_extension`
and are then available to :class:`~repro.core.params.ExtensionSpec` by name —
the plug-and-play mechanism the paper describes.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Type

import numpy as np

from .params import ExtensionSpec


class DatapathExtension:
    """Base class for on-the-fly data manipulation stages."""

    #: Registered kind name; subclasses must override.
    kind: str = "identity"

    def __init__(self, **params: object) -> None:
        self.params = dict(params)
        self.enabled = True
        self.words_processed = 0
        self.words_bypassed = 0

    # ------------------------------------------------------------------
    # Runtime control.
    # ------------------------------------------------------------------
    def set_enabled(self, enabled: bool) -> None:
        """Enable or bypass this extension for the next kernel."""
        self.enabled = bool(enabled)

    def configure(self, **runtime_params: object) -> None:
        """Update runtime parameters (tile shape, broadcast factor, ...)."""
        self.params.update(runtime_params)

    # ------------------------------------------------------------------
    # Data path.
    # ------------------------------------------------------------------
    def apply(self, word: np.ndarray) -> np.ndarray:
        """Run the extension (or its bypass) on one wide word."""
        if not self.enabled:
            self.words_bypassed += 1
            return word
        self.words_processed += 1
        return self.process(word)

    def process(self, word: np.ndarray) -> np.ndarray:
        """Transform one wide word; subclasses override."""
        return word

    def apply_batch(self, words: np.ndarray) -> np.ndarray:
        """Run the extension on a ``(n, width)`` batch of wide words.

        Counter semantics are identical to ``n`` calls to :meth:`apply`;
        the macro-step fast path uses this to transform whole word spans in
        one numpy operation.
        """
        count = len(words)
        if not self.enabled:
            self.words_bypassed += count
            return words
        self.words_processed += count
        return self.process_batch(words)

    def process_batch(self, words: np.ndarray) -> np.ndarray:
        """Batched :meth:`process`; the fallback applies it row by row, so
        user-defined extensions stay exact without a vectorized override."""
        if type(self).process is DatapathExtension.process:
            return words
        return np.stack([self.process(word) for word in words])

    def expansion_factor(self) -> int:
        """Output-bytes / input-bytes ratio when enabled (1 for most)."""
        return 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(enabled={self.enabled}, params={self.params})"


class Transposer(DatapathExtension):
    """Transpose the 2-D tile carried by a wide word.

    Runtime parameters
    ------------------
    rows, cols:
        Logical tile shape carried by the word (e.g. 8×8).
    element_bytes:
        Size of one tile element in bytes (1 for int8 operands).
    """

    kind = "transposer"

    def __init__(self, rows: int = 8, cols: int = 8, element_bytes: int = 1) -> None:
        super().__init__(rows=rows, cols=cols, element_bytes=element_bytes)

    def process(self, word: np.ndarray) -> np.ndarray:
        rows = int(self.params["rows"])
        cols = int(self.params["cols"])
        element_bytes = int(self.params["element_bytes"])
        expected = rows * cols * element_bytes
        if word.size != expected:
            raise ValueError(
                f"transposer expected {expected} bytes "
                f"({rows}x{cols}x{element_bytes}), got {word.size}"
            )
        tile = word.reshape(rows, cols, element_bytes)
        return np.ascontiguousarray(tile.transpose(1, 0, 2)).reshape(-1)

    def process_batch(self, words: np.ndarray) -> np.ndarray:
        rows = int(self.params["rows"])
        cols = int(self.params["cols"])
        element_bytes = int(self.params["element_bytes"])
        expected = rows * cols * element_bytes
        if words.shape[1] != expected:
            raise ValueError(
                f"transposer expected {expected} bytes "
                f"({rows}x{cols}x{element_bytes}), got {words.shape[1]}"
            )
        tiles = words.reshape(len(words), rows, cols, element_bytes)
        return np.ascontiguousarray(tiles.transpose(0, 2, 1, 3)).reshape(
            len(words), -1
        )


class Broadcaster(DatapathExtension):
    """Duplicate a narrow fetch across channels.

    Runtime parameters
    ------------------
    factor:
        Number of copies to produce.  The streamer fetches only
        ``num_channels / factor`` channels from memory; the broadcaster
        replicates the resulting narrow word ``factor`` times so the
        accelerator still receives a full-width word.
    """

    kind = "broadcaster"

    def __init__(self, factor: int = 1) -> None:
        if factor <= 0:
            raise ValueError("broadcast factor must be positive")
        super().__init__(factor=factor)

    def process(self, word: np.ndarray) -> np.ndarray:
        factor = int(self.params["factor"])
        if factor == 1:
            return word
        return np.tile(word, factor)

    def process_batch(self, words: np.ndarray) -> np.ndarray:
        factor = int(self.params["factor"])
        if factor == 1:
            return words
        return np.tile(words, (1, factor))

    def expansion_factor(self) -> int:
        return int(self.params["factor"]) if self.enabled else 1


# ----------------------------------------------------------------------
# Extension registry (plug-and-play instantiation from ExtensionSpec).
# ----------------------------------------------------------------------
_EXTENSION_REGISTRY: Dict[str, Type[DatapathExtension]] = {}


def register_extension(cls: Type[DatapathExtension]) -> Type[DatapathExtension]:
    """Register an extension class under its ``kind`` name.

    Can be used as a decorator on user-defined extensions::

        @register_extension
        class ZeroPadder(DatapathExtension):
            kind = "zero_padder"
            ...
    """
    if not cls.kind:
        raise ValueError("extension classes must define a non-empty 'kind'")
    _EXTENSION_REGISTRY[cls.kind] = cls
    return cls


def registered_extensions() -> Dict[str, Type[DatapathExtension]]:
    """Return a copy of the registry (kind → class)."""
    return dict(_EXTENSION_REGISTRY)


def create_extension(spec: ExtensionSpec) -> DatapathExtension:
    """Instantiate an extension from its design-time spec."""
    cls = _EXTENSION_REGISTRY.get(spec.kind)
    if cls is None:
        raise KeyError(
            f"unknown extension kind {spec.kind!r}; "
            f"registered kinds: {sorted(_EXTENSION_REGISTRY)}"
        )
    return cls(**spec.params_dict())


register_extension(DatapathExtension)
register_extension(Transposer)
register_extension(Broadcaster)


class ExtensionPipeline:
    """Cascade of datapath extensions with automatic bypass."""

    def __init__(self, extensions: Iterable[DatapathExtension] = ()) -> None:
        self.stages: List[DatapathExtension] = list(extensions)

    @staticmethod
    def from_specs(specs: Iterable[ExtensionSpec]) -> "ExtensionPipeline":
        return ExtensionPipeline(create_extension(spec) for spec in specs)

    def __len__(self) -> int:
        return len(self.stages)

    def __iter__(self):
        return iter(self.stages)

    def stage(self, kind: str) -> Optional[DatapathExtension]:
        """Return the first stage of the given kind, if instantiated."""
        for extension in self.stages:
            if extension.kind == kind:
                return extension
        return None

    def set_enables(self, enables: Iterable[bool]) -> None:
        """Program per-stage enable bits (missing entries disable nothing)."""
        for extension, enabled in zip(self.stages, enables):
            extension.set_enabled(enabled)

    def configure_stage(self, kind: str, **runtime_params: object) -> None:
        stage = self.stage(kind)
        if stage is None:
            raise KeyError(f"no extension of kind {kind!r} instantiated")
        stage.configure(**runtime_params)

    def apply(self, word: np.ndarray) -> np.ndarray:
        """Run the cascade on one wide word."""
        for extension in self.stages:
            word = extension.apply(word)
        return word

    def apply_batch(self, words: np.ndarray) -> np.ndarray:
        """Run the cascade on a ``(n, width)`` word batch at once.

        Stage counters advance exactly as ``n`` :meth:`apply` calls would.
        """
        for extension in self.stages:
            words = extension.apply_batch(words)
        return words

    def expansion_factor(self) -> int:
        """Combined output/input byte ratio of all enabled stages."""
        factor = 1
        for extension in self.stages:
            factor *= extension.expansion_factor()
        return factor

    def statistics(self) -> Dict[str, int]:
        stats: Dict[str, int] = {}
        for index, extension in enumerate(self.stages):
            stats[f"{extension.kind}_{index}_processed"] = extension.words_processed
            stats[f"{extension.kind}_{index}_bypassed"] = extension.words_bypassed
        return stats
