"""CSR-level programming model for DataMaestro.

The paper's evaluation system programs every DataMaestro through a set of
control/status registers written by the RISC-V host (base address, temporal
bounds/strides, spatial strides, addressing-mode selection ``RS``, extension
enables) followed by a start command.  This module reproduces that interface:

* :class:`CsrAddressMap` lays out the register file of a given
  :class:`~repro.core.params.StreamerDesign`;
* :func:`encode_runtime_config` lowers a
  :class:`~repro.core.params.StreamerRuntimeConfig` into a list of
  ``(offset, value)`` CSR writes;
* :func:`decode_runtime_config` re-assembles the runtime config from a
  register image, proving the encoding is lossless (tested round-trip).

The compiler emits CSR write lists, and
:class:`repro.system.host.HostProcessor` plays them into the streamers —
mirroring how the real system is driven, while the rest of the simulator only
ever sees the decoded :class:`StreamerRuntimeConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .params import StreamerDesign, StreamerRuntimeConfig

#: Number of 32-bit parameter slots reserved per datapath extension.
EXTENSION_PARAM_SLOTS = 4

#: Register word size in bytes (RV32 host).
CSR_WORD_BYTES = 4


@dataclass(frozen=True)
class CsrField:
    """One named register (or register array element) in the map."""

    name: str
    offset: int


class CsrAddressMap:
    """Register layout of one DataMaestro, derived from its design."""

    def __init__(self, design: StreamerDesign) -> None:
        self.design = design
        self._fields: Dict[str, int] = {}
        offset = 0

        def alloc(name: str) -> None:
            nonlocal offset
            self._fields[name] = offset
            offset += CSR_WORD_BYTES

        alloc("base_address")
        for index in range(design.temporal_dims):
            alloc(f"temporal_bound_{index}")
        for index in range(design.temporal_dims):
            alloc(f"temporal_stride_{index}")
        for index in range(design.spatial_dims):
            alloc(f"spatial_stride_{index}")
        alloc("addressing_mode")
        alloc("active_channels")
        alloc("extension_enable")
        for ext_index in range(len(design.extensions)):
            for slot in range(EXTENSION_PARAM_SLOTS):
                alloc(f"extension_{ext_index}_param_{slot}")
        alloc("start")
        alloc("status")
        self.size_bytes = offset

    # ------------------------------------------------------------------
    def offset_of(self, name: str) -> int:
        try:
            return self._fields[name]
        except KeyError as exc:
            raise KeyError(
                f"unknown CSR {name!r} for streamer {self.design.name!r}"
            ) from exc

    def name_of(self, offset: int) -> str:
        for name, field_offset in self._fields.items():
            if field_offset == offset:
                return name
        raise KeyError(f"no CSR at offset {offset:#x}")

    def fields(self) -> List[CsrField]:
        return [CsrField(name, offset) for name, offset in self._fields.items()]

    def __len__(self) -> int:
        return len(self._fields)


# ----------------------------------------------------------------------
# Extension runtime-parameter packing.
# ----------------------------------------------------------------------
def _pack_extension_params(kind: str, params: Dict[str, object]) -> List[int]:
    """Pack known extension runtime parameters into integer slots."""
    slots = [0] * EXTENSION_PARAM_SLOTS
    if kind == "transposer":
        slots[0] = int(params.get("rows", 8))
        slots[1] = int(params.get("cols", 8))
        slots[2] = int(params.get("element_bytes", 1))
    elif kind == "broadcaster":
        slots[0] = int(params.get("factor", 1))
    else:
        # Custom extensions may use up to EXTENSION_PARAM_SLOTS integer
        # parameters named p0..p3.
        for slot in range(EXTENSION_PARAM_SLOTS):
            slots[slot] = int(params.get(f"p{slot}", 0))
    return slots


def _unpack_extension_params(kind: str, slots: Sequence[int]) -> Dict[str, object]:
    if kind == "transposer":
        return {
            "rows": int(slots[0]),
            "cols": int(slots[1]),
            "element_bytes": int(slots[2]),
        }
    if kind == "broadcaster":
        return {"factor": int(slots[0])}
    return {f"p{index}": int(value) for index, value in enumerate(slots) if value}


# ----------------------------------------------------------------------
# Runtime-config <-> CSR-write-list conversion.
# ----------------------------------------------------------------------
def encode_runtime_config(
    design: StreamerDesign,
    runtime: StreamerRuntimeConfig,
    group_size_options: Sequence[int],
) -> List[Tuple[int, int]]:
    """Lower a runtime config into ``(offset, value)`` CSR writes."""
    runtime.validate_against(design)
    csr_map = CsrAddressMap(design)
    options = list(group_size_options)
    if runtime.bank_group_size not in options:
        raise ValueError(
            f"{design.name}: bank group size {runtime.bank_group_size} is not "
            f"one of the instantiated options {options}"
        )
    writes: List[Tuple[int, int]] = [
        (csr_map.offset_of("base_address"), runtime.base_address)
    ]
    for index in range(design.temporal_dims):
        bound = runtime.temporal_bounds[index] if index < len(runtime.temporal_bounds) else 1
        stride = (
            runtime.temporal_strides[index]
            if index < len(runtime.temporal_strides)
            else 0
        )
        writes.append((csr_map.offset_of(f"temporal_bound_{index}"), bound))
        writes.append((csr_map.offset_of(f"temporal_stride_{index}"), stride))
    for index in range(design.spatial_dims):
        writes.append(
            (csr_map.offset_of(f"spatial_stride_{index}"), runtime.spatial_strides[index])
        )
    writes.append(
        (csr_map.offset_of("addressing_mode"), options.index(runtime.bank_group_size))
    )
    writes.append(
        (
            csr_map.offset_of("active_channels"),
            runtime.active_channels or design.num_channels,
        )
    )
    enables = runtime.extension_enables or tuple(True for _ in design.extensions)
    enable_mask = 0
    for bit, enabled in enumerate(enables):
        if enabled:
            enable_mask |= 1 << bit
    writes.append((csr_map.offset_of("extension_enable"), enable_mask))
    ext_params = runtime.extension_params_dict()
    for ext_index, spec in enumerate(design.extensions):
        params = dict(ext_params.get(spec.kind, {}))
        slots = _pack_extension_params(spec.kind, params)
        for slot, value in enumerate(slots):
            writes.append(
                (csr_map.offset_of(f"extension_{ext_index}_param_{slot}"), value)
            )
    return writes


def decode_runtime_config(
    design: StreamerDesign,
    register_image: Dict[int, int],
    group_size_options: Sequence[int],
) -> StreamerRuntimeConfig:
    """Re-assemble a runtime config from a register image (offset → value)."""
    csr_map = CsrAddressMap(design)
    options = list(group_size_options)

    def read(name: str, default: int = 0) -> int:
        return int(register_image.get(csr_map.offset_of(name), default))

    temporal_bounds = []
    temporal_strides = []
    for index in range(design.temporal_dims):
        bound = read(f"temporal_bound_{index}", 1)
        stride = read(f"temporal_stride_{index}", 0)
        temporal_bounds.append(bound)
        temporal_strides.append(stride)
    # Trim trailing unit dimensions so the decoded config matches what the
    # compiler emitted (unused dims are programmed with bound=1, stride=0).
    while (
        len(temporal_bounds) > 1
        and temporal_bounds[-1] == 1
        and temporal_strides[-1] == 0
    ):
        temporal_bounds.pop()
        temporal_strides.pop()

    spatial_strides = tuple(
        read(f"spatial_stride_{index}") for index in range(design.spatial_dims)
    )
    mode_index = read("addressing_mode")
    if not 0 <= mode_index < len(options):
        raise ValueError(f"decoded RS index {mode_index} out of range for {options}")
    enable_mask = read("extension_enable")
    enables = tuple(
        bool(enable_mask & (1 << bit)) for bit in range(len(design.extensions))
    )
    extension_params = []
    for ext_index, spec in enumerate(design.extensions):
        slots = [
            read(f"extension_{ext_index}_param_{slot}")
            for slot in range(EXTENSION_PARAM_SLOTS)
        ]
        params = _unpack_extension_params(spec.kind, slots)
        if params:
            extension_params.append((spec.kind, tuple(sorted(params.items()))))
    active = read("active_channels", design.num_channels)
    return StreamerRuntimeConfig(
        base_address=read("base_address"),
        temporal_bounds=tuple(temporal_bounds),
        temporal_strides=tuple(temporal_strides),
        spatial_strides=spatial_strides,
        bank_group_size=options[mode_index],
        active_channels=active if active != design.num_channels else None,
        extension_enables=enables if design.extensions else (),
        extension_params=tuple(extension_params),
    )
