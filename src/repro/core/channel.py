"""Per-channel Memory Interface Controller and FIFOs (paper §III-C, Fig. 2(b)).

A DataMaestro splits one wide accelerator word into ``N_C`` narrow channels,
each the width of one memory bank word.  Every channel owns:

* an **address FIFO** fed by the AGU (depth ``D_ABf``);
* a **data FIFO** decoupling memory responses from the accelerator
  (depth ``D_DBf``);
* a **Memory Interface Controller** made of the *Request Side Controller*
  (issues requests as soon as an address and a credit are available) and the
  *Outstanding Request Manager* (reserves data-FIFO slots for in-flight
  requests so a response never finds its FIFO full).

This fine-grained, per-channel request issue is what the paper calls
fine-grained prefetch: each channel runs ahead independently, so a bank
conflict on one channel does not stall the others, and the data FIFOs absorb
the resulting jitter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..memory.addressing import BankLocation
from ..memory.subsystem import MemoryRequest, MemorySubsystem
from ..sim.fifo import Fifo
from .params import StreamerDesign, StreamerMode


@dataclass
class ChannelAddress:
    """One decoded address queued for a channel."""

    logical: int
    location: BankLocation
    step: int


class StreamChannel:
    """One memory-interaction channel of a DataMaestro."""

    def __init__(self, streamer_name: str, index: int, design: StreamerDesign) -> None:
        self.streamer_name = streamer_name
        self.index = index
        self.design = design
        self.requester_id = f"{streamer_name}.ch{index}"
        self.address_fifo: Fifo[ChannelAddress] = Fifo(
            design.address_buffer_depth, name=f"{self.requester_id}.addr"
        )
        self.data_fifo: Fifo[np.ndarray] = Fifo(
            design.data_buffer_depth, name=f"{self.requester_id}.data"
        )
        self.outstanding = 0
        self.requests_issued = 0
        self.responses_received = 0
        self.credit_stall_cycles = 0

    # ------------------------------------------------------------------
    @property
    def is_read(self) -> bool:
        return self.design.mode is StreamerMode.READ

    @property
    def busy(self) -> bool:
        """True while the channel still holds work in any stage."""
        return (
            not self.address_fifo.is_empty
            or not self.data_fifo.is_empty
            or self.outstanding > 0
        )

    def reset(self) -> None:
        """Clear FIFOs and in-flight bookkeeping between kernels."""
        self.address_fifo.clear()
        self.data_fifo.clear()
        self.outstanding = 0

    # ------------------------------------------------------------------
    # Outstanding Request Manager: credit computation.
    # ------------------------------------------------------------------
    @property
    def read_credits(self) -> int:
        """Data-FIFO slots not yet reserved by in-flight read requests."""
        return self.data_fifo.free_slots - self.outstanding

    def can_issue_read(self) -> bool:
        return not self.address_fifo.is_empty and self.read_credits > 0

    def can_issue_write(self) -> bool:
        return not self.address_fifo.is_empty and not self.data_fifo.is_empty

    def can_issue(self) -> bool:
        """Whether the MIC could issue a request this cycle (mode-aware)."""
        return self.can_issue_read() if self.is_read else self.can_issue_write()

    # ------------------------------------------------------------------
    # Next-event protocol (see repro.engine).
    # ------------------------------------------------------------------
    def next_event_cycle(self, now: int) -> Optional[int]:
        """``now`` when the MIC can issue a request, else ``None``.

        A channel has no timed events of its own: when it cannot issue it is
        waiting on an external input (a credit freed by a memory response, an
        address from the AGU, or data from the accelerator), each of which is
        reported by the component that produces it.
        """
        return now if self.can_issue() else None

    def advance(self, cycles: int) -> None:
        """Bulk-apply ``cycles`` skipped cycles to the stall counters.

        Mirrors what :meth:`issue` would have recorded had it been called
        once per cycle across an inactive span: a read channel holding
        addresses but no Outstanding-Request-Manager credits counts a credit
        stall every cycle.
        """
        if self.is_read and not self.address_fifo.is_empty and self.read_credits <= 0:
            self.credit_stall_cycles += cycles

    # ------------------------------------------------------------------
    # Request Side Controller: per-cycle issue.
    # ------------------------------------------------------------------
    def issue(self, memory: MemorySubsystem) -> bool:
        """Issue at most one memory request this cycle; return True if issued."""
        if self.is_read:
            if not self.can_issue_read():
                if not self.address_fifo.is_empty:
                    self.credit_stall_cycles += 1
                return False
            entry = self.address_fifo.pop()
            memory.submit(
                MemoryRequest(
                    requester=self.requester_id,
                    is_write=False,
                    bank=entry.location.bank,
                    line=entry.location.line,
                    tag=entry.step,
                )
            )
        else:
            if not self.can_issue_write():
                return False
            entry = self.address_fifo.pop()
            data = self.data_fifo.pop()
            memory.submit(
                MemoryRequest(
                    requester=self.requester_id,
                    is_write=True,
                    bank=entry.location.bank,
                    line=entry.location.line,
                    data=data,
                    tag=entry.step,
                )
            )
        self.outstanding += 1
        self.requests_issued += 1
        return True

    def collect(self, memory: MemorySubsystem) -> int:
        """Drain matured responses; return the number collected."""
        responses = memory.collect_responses(self.requester_id)
        for response in responses:
            self.outstanding -= 1
            self.responses_received += 1
            if not response.is_write:
                # The ORM reserved a slot when the request was issued, so a
                # full FIFO here would indicate a protocol bug.
                self.data_fifo.push(response.data)
        return len(responses)

    # ------------------------------------------------------------------
    # Streamer-facing data movement.
    # ------------------------------------------------------------------
    def push_address(self, address: ChannelAddress) -> None:
        self.address_fifo.push(address)

    def output_word_available(self) -> bool:
        """Read mode: data ready for the accelerator."""
        return not self.data_fifo.is_empty

    def pop_output_word(self) -> np.ndarray:
        return self.data_fifo.pop()

    def input_space_available(self) -> bool:
        """Write mode: room for one more word from the accelerator."""
        return not self.data_fifo.is_full

    def push_input_word(self, data: np.ndarray) -> None:
        self.data_fifo.push(np.asarray(data, dtype=np.uint8))

    def statistics(self) -> dict:
        return {
            "requests_issued": self.requests_issued,
            "responses_received": self.responses_received,
            "credit_stall_cycles": self.credit_stall_cycles,
            "max_data_occupancy": self.data_fifo.max_occupancy,
            "max_addr_occupancy": self.address_fifo.max_occupancy,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamChannel({self.requester_id}, outstanding={self.outstanding}, "
            f"addr={self.address_fifo.occupancy}, data={self.data_fifo.occupancy})"
        )
