"""Design-time parameters and runtime configuration of a DataMaestro.

This module is the Python rendition of the paper's Table II.  A
:class:`StreamerDesign` captures everything that is fixed when the hardware
is generated (number of channels, FIFO depths, spatial loop structure, which
datapath extensions are instantiated, ...), while a
:class:`StreamerRuntimeConfig` captures everything the host programs through
CSRs before launching a kernel (base address, temporal bounds and strides,
spatial strides, addressing-mode selection, extension enables).

The module also defines :class:`FeatureSet`, the switchboard used by the
ablation study of Figure 7: each of the paper's architecture points ①–⑥ is a
particular combination of these switches.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..memory.addressing import BankGeometry


class StreamerMode(enum.Enum):
    """Whether a DataMaestro reads from or writes to the scratchpad."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class ExtensionSpec:
    """Design-time description of one datapath extension slot.

    Attributes
    ----------
    kind:
        Registered extension kind (``"transposer"``, ``"broadcaster"``, or a
        user-registered custom kind).
    params:
        Static parameters forwarded to the extension constructor.
    """

    kind: str
    params: Tuple[Tuple[str, object], ...] = ()

    @staticmethod
    def make(kind: str, **params: object) -> "ExtensionSpec":
        return ExtensionSpec(kind=kind, params=tuple(sorted(params.items())))

    def params_dict(self) -> Dict[str, object]:
        return dict(self.params)


@dataclass(frozen=True)
class StreamerDesign:
    """Design-time parameters of one DataMaestro (Table II, top half)."""

    name: str
    mode: StreamerMode
    num_channels: int
    spatial_bounds: Tuple[int, ...]
    temporal_dims: int
    bank_width_bits: int = 64
    address_buffer_depth: int = 8
    data_buffer_depth: int = 8
    extensions: Tuple[ExtensionSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.num_channels <= 0:
            raise ValueError(f"{self.name}: num_channels must be positive")
        if self.temporal_dims <= 0:
            raise ValueError(f"{self.name}: temporal_dims must be positive")
        if self.bank_width_bits % 8 != 0 or self.bank_width_bits <= 0:
            raise ValueError(f"{self.name}: bank_width_bits must be a multiple of 8")
        if self.address_buffer_depth <= 0 or self.data_buffer_depth <= 0:
            raise ValueError(f"{self.name}: FIFO depths must be positive")
        if not self.spatial_bounds:
            raise ValueError(f"{self.name}: at least one spatial dimension required")
        if any(bound <= 0 for bound in self.spatial_bounds):
            raise ValueError(f"{self.name}: spatial bounds must be positive")
        spatial_points = math.prod(self.spatial_bounds)
        if spatial_points != self.num_channels:
            raise ValueError(
                f"{self.name}: product of spatial bounds ({spatial_points}) must "
                f"equal the number of channels ({self.num_channels})"
            )

    # ------------------------------------------------------------------
    @property
    def spatial_dims(self) -> int:
        """``D_s`` in the paper."""
        return len(self.spatial_bounds)

    @property
    def bank_width_bytes(self) -> int:
        return self.bank_width_bits // 8

    @property
    def word_bytes(self) -> int:
        """Width of the assembled wide word handed to the accelerator."""
        return self.num_channels * self.bank_width_bytes

    @property
    def is_read(self) -> bool:
        return self.mode is StreamerMode.READ

    @property
    def is_write(self) -> bool:
        return self.mode is StreamerMode.WRITE

    def extension_kinds(self) -> List[str]:
        return [spec.kind for spec in self.extensions]


@dataclass(frozen=True)
class StreamerRuntimeConfig:
    """Runtime (CSR-programmed) configuration of one DataMaestro.

    All strides are byte strides, exactly as the paper's affine address
    formula ``Addr = Addr_B + Σ St[i]·xt[i] + Σ Ss[j]·xs[j]``.
    """

    base_address: int
    temporal_bounds: Tuple[int, ...]
    temporal_strides: Tuple[int, ...]
    spatial_strides: Tuple[int, ...]
    bank_group_size: int
    active_channels: Optional[int] = None
    extension_enables: Tuple[bool, ...] = ()
    extension_params: Tuple[Tuple[str, object], ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        if self.base_address < 0:
            raise ValueError("base_address must be non-negative")
        if len(self.temporal_bounds) != len(self.temporal_strides):
            raise ValueError("temporal bounds and strides must have equal length")
        if any(bound <= 0 for bound in self.temporal_bounds):
            raise ValueError("temporal bounds must be positive")
        if self.bank_group_size <= 0:
            raise ValueError("bank_group_size must be positive")
        if self.active_channels is not None and self.active_channels <= 0:
            raise ValueError("active_channels must be positive when provided")

    # ------------------------------------------------------------------
    @property
    def total_iterations(self) -> int:
        """Number of temporal steps (wide words) this configuration streams."""
        return math.prod(self.temporal_bounds)

    def extension_params_dict(self) -> Dict[str, object]:
        return dict(self.extension_params)

    def with_updates(self, **changes: object) -> "StreamerRuntimeConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **changes)

    def validate_against(self, design: StreamerDesign) -> None:
        """Check compatibility of this runtime config with a design."""
        if len(self.temporal_bounds) > design.temporal_dims:
            raise ValueError(
                f"{design.name}: {len(self.temporal_bounds)} temporal dimensions "
                f"requested but only {design.temporal_dims} instantiated"
            )
        if len(self.spatial_strides) != design.spatial_dims:
            raise ValueError(
                f"{design.name}: expected {design.spatial_dims} spatial strides, "
                f"got {len(self.spatial_strides)}"
            )
        active = self.active_channels or design.num_channels
        if active > design.num_channels:
            raise ValueError(
                f"{design.name}: active_channels {active} exceeds the "
                f"{design.num_channels} instantiated channels"
            )
        if design.num_channels % active != 0:
            raise ValueError(
                f"{design.name}: active_channels {active} must divide "
                f"{design.num_channels}"
            )
        if self.extension_enables and len(self.extension_enables) != len(
            design.extensions
        ):
            raise ValueError(
                f"{design.name}: {len(self.extension_enables)} extension enables "
                f"given but the design instantiates {len(design.extensions)}"
            )


@dataclass(frozen=True)
class MemoryDesign:
    """Design-time description of the scratchpad memory subsystem."""

    num_banks: int
    bank_width_bits: int
    capacity_bytes: int
    group_size_options: Tuple[int, ...] = ()
    read_latency: int = 1

    def __post_init__(self) -> None:
        if self.bank_width_bits % 8 != 0:
            raise ValueError("bank_width_bits must be a multiple of 8")
        width_bytes = self.bank_width_bits // 8
        if self.capacity_bytes % (self.num_banks * width_bytes) != 0:
            raise ValueError(
                "capacity must be a whole number of wordlines per bank"
            )
        for option in self.group_size_options:
            if option <= 0 or self.num_banks % option != 0:
                raise ValueError(
                    f"group size option {option} does not divide {self.num_banks}"
                )

    @property
    def bank_width_bytes(self) -> int:
        return self.bank_width_bits // 8

    @property
    def bank_depth(self) -> int:
        return self.capacity_bytes // (self.num_banks * self.bank_width_bytes)

    def geometry(self) -> BankGeometry:
        return BankGeometry(
            num_banks=self.num_banks,
            bank_width_bytes=self.bank_width_bytes,
            bank_depth=self.bank_depth,
        )

    def resolved_group_options(self) -> Tuple[int, ...]:
        """Group-size options with FIMA/NIMA always available as endpoints."""
        options = set(self.group_size_options)
        options.add(self.num_banks)
        options.add(1)
        return tuple(sorted(options, reverse=True))


@dataclass(frozen=True)
class FeatureSet:
    """Runtime feature switchboard used by the ablation study (Fig. 7).

    Each flag enables one of the paper's architectural features:

    * ``fine_grained_prefetch`` — §III-C, asynchronous per-channel prefetch
      gated by the Outstanding Request Manager.
    * ``transposer`` — §III-E, on-the-fly tile transposition (otherwise a
      software transpose pre-pass through the scratchpad is required).
    * ``broadcaster`` — §III-E, on-the-fly duplication of per-channel data
      (otherwise the duplicated tensor is materialised in memory).
    * ``implicit_im2col`` — §IV-A, convolution input streamed directly via a
      6-D temporal pattern (otherwise a software im2col pre-pass is needed).
    * ``addressing_mode_switching`` — §III-D, per-operand GIMA/NIMA placement
      (otherwise everything lives in a single fully-interleaved region).
    """

    fine_grained_prefetch: bool = True
    transposer: bool = True
    broadcaster: bool = True
    implicit_im2col: bool = True
    addressing_mode_switching: bool = True

    @staticmethod
    def all_enabled() -> "FeatureSet":
        return FeatureSet()

    @staticmethod
    def all_disabled() -> "FeatureSet":
        return FeatureSet(
            fine_grained_prefetch=False,
            transposer=False,
            broadcaster=False,
            implicit_im2col=False,
            addressing_mode_switching=False,
        )

    def as_dict(self) -> Dict[str, bool]:
        return {
            "fine_grained_prefetch": self.fine_grained_prefetch,
            "transposer": self.transposer,
            "broadcaster": self.broadcaster,
            "implicit_im2col": self.implicit_im2col,
            "addressing_mode_switching": self.addressing_mode_switching,
        }

    def with_updates(self, **changes: bool) -> "FeatureSet":
        return replace(self, **changes)


# ----------------------------------------------------------------------
# Ablation ladder of Figure 7: architectures ① through ⑥.
# ----------------------------------------------------------------------
ABLATION_STEPS: Tuple[Tuple[str, FeatureSet], ...] = (
    ("1_baseline", FeatureSet.all_disabled()),
    (
        "2_prefetch",
        FeatureSet.all_disabled().with_updates(fine_grained_prefetch=True),
    ),
    (
        "3_transposer",
        FeatureSet.all_disabled().with_updates(
            fine_grained_prefetch=True, transposer=True
        ),
    ),
    (
        "4_broadcaster",
        FeatureSet.all_disabled().with_updates(
            fine_grained_prefetch=True, transposer=True, broadcaster=True
        ),
    ),
    (
        "5_im2col",
        FeatureSet.all_disabled().with_updates(
            fine_grained_prefetch=True,
            transposer=True,
            broadcaster=True,
            implicit_im2col=True,
        ),
    ),
    ("6_full", FeatureSet.all_enabled()),
)


def ablation_feature_sets() -> Dict[str, FeatureSet]:
    """Return the ordered ①–⑥ feature ladder as a name→FeatureSet mapping."""
    return dict(ABLATION_STEPS)


def validate_streamer_designs(
    designs: Sequence[StreamerDesign], memory: MemoryDesign
) -> None:
    """Cross-check a set of streamer designs against the memory design."""
    names = [design.name for design in designs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate streamer names in {names}")
    for design in designs:
        if design.bank_width_bits != memory.bank_width_bits:
            raise ValueError(
                f"{design.name}: bank width {design.bank_width_bits} does not "
                f"match the memory bank width {memory.bank_width_bits}"
            )
        if design.num_channels > memory.num_banks:
            raise ValueError(
                f"{design.name}: {design.num_channels} channels cannot be served "
                f"conflict-free by {memory.num_banks} banks"
            )
