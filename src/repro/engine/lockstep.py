"""The legacy lockstep loop: one ``step()`` call per simulated clock cycle.

Kept as the parity reference for the event-driven scheduler
(:mod:`repro.engine.event`): it executes every cycle unconditionally, so its
results define the ground truth the event engine must reproduce exactly.
Select it with ``engine="lockstep"`` anywhere an engine can be chosen.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from .base import LOCKSTEP_ENGINE, SimulationEngine


class LockstepEngine(SimulationEngine):
    """Drives a ``Steppable`` target one cycle at a time, every cycle."""

    name = LOCKSTEP_ENGINE

    def drive(
        self,
        target,
        max_cycles: int,
        describe: str = "simulation",
        detail: Optional[Union[str, Callable[[], str]]] = None,
        progress_callback: Optional[Callable[[int], None]] = None,
        progress_interval: int = 100_000,
    ) -> int:
        cycles = 0
        busy = True
        while busy:
            if cycles >= max_cycles:
                raise self._budget_error(describe, cycles, max_cycles, detail)
            busy = target.step()
            cycles += 1
            if progress_callback is not None and cycles % progress_interval == 0:
                progress_callback(cycles)
        return cycles
