"""Macro-stepping of *active* steady-state spans (vectorized fast path).

PR 3's event scheduler can only skip cycles in which **nothing** happens.
Compute-bound kernels never present such cycles: once the pipeline fills,
every cycle fires the GeMM core, streams operand words and issues memory
requests — yet the behaviour is *periodic*: each output tile repeats the
same control schedule, only the addresses (and the data) advance.  This
module exploits that periodicity to advance many whole tiles at once while
staying bit-identical to the lockstep engine:

1. **Detect** — at every completed-tile boundary the planner captures a
   structural *signature* (FIFO occupancies, outstanding/pending/in-flight
   shapes with relative timings, the crossbar's rotating-priority state) and
   a flat *counter snapshot*.  When the current boundary's signature equals
   the one ``g`` tiles back (``g`` rising from 1 — some schedules only
   repeat every few tiles), the ``g``-tile stretch that just executed is a
   proven steady period and its counter diff is the per-period delta.

2. **Verify** — identical structure only implies identical behaviour if the
   upcoming address stream hits the same banks in the same schedule.  The
   planner evaluates every streamer's future address span *en bloc* (one
   vectorized mixed-radix AGU evaluation + one vectorized bank decode) and
   keeps the longest prefix of periods whose bank pattern tiles the
   reference period exactly.  A bank conflict that breaks the steady state
   mid-span therefore truncates the jump right before the deviating period
   — the per-cycle loop then handles the conflict exactly.  Span reads and
   writes must also touch disjoint scratchpad locations (and writes must be
   unique) so bulk data movement is order-independent.

3. **Replay** — ``r`` verified periods are applied at once: every scalar
   counter advances by ``r x`` its per-period delta, the scratchpad is read
   with one gather and written with one scatter per bank, all MAC steps of
   all tiles collapse into a single ``einsum``, and every queue entry
   (address FIFOs, data FIFOs, pending/in-flight memory traffic) is rebuilt
   as its position-shifted image ``r`` periods later.  Because integer
   accumulation is associative and the control schedule is proven to
   repeat, the result is exactly the state the per-cycle loop would have
   reached — the ``tests/engine`` parity suite is the referee.

Any precondition failure simply bails (nothing is mutated), so workloads
that never reach a steady state run exactly as before.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.channel import ChannelAddress
from ..memory.addressing import BankLocation
from ..memory.subsystem import MemoryRequest, MemoryResponse

#: Fewest verified periods worth jumping over (amortizes plan/replay cost).
MIN_PERIODS = 2
#: Most periods replayed per jump (bounds the planner's address matrices;
#: consecutive jumps chain, so this does not cap the total span).
MAX_PERIODS = 4096
#: Largest boundary group considered as one period.  A steady schedule may
#: only repeat every g tiles (e.g. an operand stride that shifts the bank
#: pattern by half a bank group each tile tiles with g == 2), so the planner
#: pairs the current boundary with the one ``g`` tiles back for rising
#: ``g`` until signature and bank pattern both repeat.
MAX_GROUP = 16

#: Memory counter names mirrored through the snapshot/delta machinery.
_MEM_COUNTER_KEYS = (
    "bank_conflicts",
    "word_reads",
    "word_writes",
    "dma_word_reads",
    "dma_word_writes",
)


class _Bail(Exception):
    """A steady-span precondition failed; fall back to per-cycle stepping."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass
class SteadySpanStats:
    """Observability counters of the macro-step fast path."""

    boundaries: int = 0
    attempts: int = 0
    jumps: int = 0
    periods_replayed: int = 0
    cycles_skipped: int = 0
    bails: Dict[str, int] = field(default_factory=dict)

    def bail(self, reason: str) -> None:
        self.bails[reason] = self.bails.get(reason, 0) + 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "boundaries": self.boundaries,
            "attempts": self.attempts,
            "jumps": self.jumps,
            "periods_replayed": self.periods_replayed,
            "cycles_skipped": self.cycles_skipped,
            "bails": dict(self.bails),
        }


@dataclass
class _ChannelSpan:
    """Everything the replayer needs about one active stream channel."""

    channel: object
    column: int  # column in the streamer's address matrix
    granted: int
    issued: int
    collected: int
    words: int  # popped (read) / pushed (write) wide-word position


@dataclass
class _StreamSpan:
    """Per-streamer planning state over the span."""

    streamer: object
    port: str
    is_read: bool
    delta: int  # positions per channel per period
    generated: int  # bundles generated at the boundary
    lo: int  # first bundle step covered by the matrix
    matrix: np.ndarray  # (steps, channels) logical addresses
    banks: np.ndarray
    lines: np.ndarray
    offsets: np.ndarray
    channels: List[_ChannelSpan]


@dataclass
class _Plan:
    """A verified steady span, ready to commit."""

    periods: int
    cycles: int
    end_cycle: int
    delta: np.ndarray
    streams: List[_StreamSpan]
    tiles: int  # output tiles produced across the span (periods x group)


class SteadySpanPlanner:
    """Detects, verifies and replays periodic steady-state spans.

    One planner instance is bound to one loaded
    :class:`~repro.system.system.AcceleratorSystem` program (the system
    creates a fresh planner in ``load_program``).
    """

    def __init__(self, system) -> None:
        self.system = system
        self.stats = SteadySpanStats()
        self._slots: Optional[List[Tuple[str, Callable, Callable]]] = None
        self._index: Dict[str, int] = {}
        self._plan: Optional[_Plan] = None
        #: Rolling (cycle, signature, snapshot) records of recent boundaries.
        self._history: deque = deque(maxlen=MAX_GROUP + 1)
        #: Group sizes whose bank pattern failed to tile (retired until the
        #: next successful jump — the failure is usually persistent).
        self._skip_groups: set = set()

    # ------------------------------------------------------------------
    # Counter snapshot layout: one (name, getter, setter) triple per scalar
    # counter that must advance by r x its per-period delta on a jump.
    # ------------------------------------------------------------------
    def _build_slots(self) -> None:
        sys = self.system
        mem = sys.memory
        slots: List[Tuple[str, Callable, Callable]] = []

        def attr(name: str, obj: object, attribute: str) -> None:
            slots.append(
                (
                    name,
                    lambda o=obj, a=attribute: getattr(o, a),
                    lambda v, o=obj, a=attribute: setattr(o, a, int(v)),
                )
            )

        attr("system.cycles", sys, "_cycles")
        attr("memory.cycle", mem, "cycle")
        for key in _MEM_COUNTER_KEYS:
            slots.append(
                (
                    f"memory.{key}",
                    lambda c=mem.counters, k=key: c.get(k),
                    lambda v, c=mem.counters, k=key: c.set(k, int(v)),
                )
            )
        for bank in mem.scratchpad.banks:
            attr(f"bank{bank.index}.reads", bank, "read_count")
            attr(f"bank{bank.index}.writes", bank, "write_count")
        gemm = sys.gemm_core
        attr("gemm.mac", gemm, "mac_cycles")
        attr("gemm.stall", gemm, "stall_cycles")
        attr("gemm.tile", gemm, "_tile_index")
        quantizer = sys.quantizer
        attr("quant.tiles", quantizer, "tiles_processed")
        attr("quant.stall", quantizer, "stall_cycles")
        attr("quant.pushes", quantizer._pending, "total_pushes")
        attr("quant.pops", quantizer._pending, "total_pops")
        for port in sys._active_ports:
            streamer = sys.streamers[port]
            attr(f"{port}.words", streamer, "words_streamed")
            attr(f"{port}.bundles", streamer, "bundles_generated")
            for channel in streamer._active():
                rid = channel.requester_id
                state = mem._state(rid)
                attr(f"{rid}.issued", channel, "requests_issued")
                attr(f"{rid}.collected", channel, "responses_received")
                attr(f"{rid}.credit_stalls", channel, "credit_stall_cycles")
                attr(f"{rid}.addr_pushes", channel.address_fifo, "total_pushes")
                attr(f"{rid}.addr_pops", channel.address_fifo, "total_pops")
                attr(f"{rid}.data_pushes", channel.data_fifo, "total_pushes")
                attr(f"{rid}.data_pops", channel.data_fifo, "total_pops")
                attr(f"{rid}.granted", state, "granted")
                attr(f"{rid}.retries", state, "retries")
        self._slots = slots
        self._index = {name: i for i, (name, _, _) in enumerate(slots)}

    def _capture(self) -> np.ndarray:
        assert self._slots is not None
        return np.fromiter(
            (get() for _, get, _ in self._slots),
            dtype=np.int64,
            count=len(self._slots),
        )

    def _apply_delta(self, delta: np.ndarray, periods: int) -> None:
        assert self._slots is not None
        for (name, get, set_), step in zip(self._slots, delta.tolist()):
            if step:
                set_(get() + step * periods)

    # ------------------------------------------------------------------
    # Structural signature: everything behaviour-relevant except the
    # monotone stream positions and the data itself.
    # ------------------------------------------------------------------
    def _signature(self) -> tuple:
        sys = self.system
        mem = sys.memory
        now = sys._cycles
        parts: List[object] = [
            sys.gemm_core._k_index,
            sys.quantizer._pending.occupancy,
        ]
        for port in sys._active_ports:
            streamer = sys.streamers[port]
            parts.append((port, streamer._popped_this_cycle))
            for channel in streamer._active():
                state = mem._requesters.get(channel.requester_id)
                pending = len(state.pending) if state else 0
                responses = (
                    tuple(r.ready_cycle - now for r in state.responses)
                    if state
                    else ()
                )
                parts.append(
                    (
                        channel.address_fifo.occupancy,
                        channel.data_fifo.occupancy,
                        channel.outstanding,
                        pending,
                        responses,
                    )
                )
        parts.append(tuple(sorted(mem._last_grant.items())))
        parts.append(
            tuple((r.requester, r.ready_cycle - now) for r in mem._in_flight)
        )
        return tuple(parts)

    # ------------------------------------------------------------------
    # Boundary handling (called by AcceleratorSystem.steady_span).
    # ------------------------------------------------------------------
    def boundary(self, limit: int) -> int:
        """Record a completed-tile boundary; return a committed span size.

        A non-zero return means a plan is staged and the engine must call
        ``advance_active`` with exactly that many cycles next.
        """
        sys = self.system
        gemm = sys.gemm_core
        self.stats.boundaries += 1
        # Keep at least one tile for the per-cycle loop so the completion
        # cycle (and with it the final drain) is always stepped normally.
        tiles_remaining = gemm.job.output_tiles - gemm._tile_index - 1
        if tiles_remaining < MIN_PERIODS:
            self._history.clear()
            return 0
        if self._slots is None:
            self._build_slots()
        now = sys._cycles
        signature = self._signature()
        snapshot = self._capture()
        self._history.append((now, signature, snapshot))
        for group in range(1, len(self._history)):
            if group in self._skip_groups:
                continue
            prev_cycle, prev_signature, prev_snapshot = self._history[
                -1 - group
            ]
            if signature != prev_signature:
                continue
            period = now - prev_cycle
            if period <= 0 or limit < MIN_PERIODS * period:
                continue
            self.stats.attempts += 1
            delta = snapshot - prev_snapshot
            try:
                plan = self._prepare(period, delta, limit, tiles_remaining)
            except _Bail as bail:
                self.stats.bail(bail.reason)
                if bail.reason == "bank_pattern":
                    self._skip_groups.add(group)
                continue
            self._plan = plan
            return plan.cycles
        return 0

    def advance_active(self, cycles: int) -> None:
        """Commit the staged plan (the span returned by :meth:`boundary`)."""
        plan = self._plan
        self._plan = None
        if plan is None or plan.cycles != cycles:
            raise RuntimeError(
                f"advance_active({cycles}) without a matching staged plan"
            )
        self._commit(plan)
        # Roll the reference forward so the very next boundary can chain
        # another jump after re-observing just one period group.
        assert self._history
        _, signature, snapshot = self._history[-1]
        self._history.clear()
        self._history.append(
            (plan.end_cycle, signature, snapshot + plan.delta * plan.periods)
        )
        self._skip_groups.clear()
        self.stats.jumps += 1
        self.stats.periods_replayed += plan.periods
        self.stats.cycles_skipped += plan.cycles

    # ------------------------------------------------------------------
    # Planning (read-only: any failure bails with nothing mutated).
    # ------------------------------------------------------------------
    def _delta(self, delta: np.ndarray, name: str) -> int:
        return int(delta[self._index[name]])

    def _prepare(
        self, period: int, delta: np.ndarray, limit: int, tiles_remaining: int
    ) -> _Plan:
        sys = self.system
        mem = sys.memory
        gemm = sys.gemm_core
        d = lambda name: self._delta(delta, name)

        group = d("gemm.tile")  # output tiles per period
        if group < 1 or d("gemm.mac") != group * gemm.job.tiles_k:
            raise _Bail("tile_cadence")
        if sys._program.uses_quantizer and d("quant.tiles") != group:
            raise _Bail("quantizer_cadence")

        # Every memory requester must belong to an active stream channel.
        active_ids = {
            channel.requester_id
            for port in sys._active_ports
            for channel in sys.streamers[port]._active()
        }
        for name, state in mem._requesters.items():
            if name not in active_ids and (state.pending or state.responses):
                raise _Bail("foreign_requester")
        for response in mem._in_flight:
            if response.requester not in active_ids:
                raise _Bail("foreign_requester")

        periods = min(tiles_remaining // group, limit // period, MAX_PERIODS)
        if periods < MIN_PERIODS:
            raise _Bail("too_short")
        streams: List[_StreamSpan] = []
        for port in sys._active_ports:
            span = self._prepare_stream(port, delta, periods)
            if span is not None:
                streams.append(span)
                if span.delta:
                    available = span.streamer.agu.total_bundles - span.generated
                    periods = min(periods, available // span.delta)
        if periods < MIN_PERIODS:
            raise _Bail("too_short")

        # Vectorized bank-pattern verification: the span's bank schedule
        # must tile the reference period exactly; a deviation (e.g. a bank
        # conflict pattern breaking the steady state) truncates the jump
        # right before the deviating period.
        for span in streams:
            if not span.delta:
                continue
            step = span.delta
            banks = span.banks
            same = np.all(banks[step:] == banks[:-step], axis=1)
            if not same.all():
                mismatch = span.lo + step + int(np.argmin(same))
                periods = min(periods, (mismatch - span.generated) // step)
        if periods < MIN_PERIODS:
            raise _Bail("bank_pattern")

        # Span accesses must commute: reads and writes disjoint, writes
        # unique, so one gather plus one scatter reproduces the per-cycle
        # access sequence regardless of intra-span ordering.
        depth = mem.geometry.bank_depth
        read_keys: List[np.ndarray] = []
        write_keys: List[np.ndarray] = []
        for span in streams:
            if not span.delta:
                continue
            count = periods * span.delta
            for channel_span in span.channels:
                start = channel_span.granted - span.lo
                keys = (
                    span.banks[start : start + count, channel_span.column] * depth
                    + span.lines[start : start + count, channel_span.column]
                )
                (read_keys if span.is_read else write_keys).append(keys)
                if not span.is_read:
                    for request in mem._state(
                        channel_span.channel.requester_id
                    ).pending:
                        if request.strobe is not None:
                            raise _Bail("strobed_write")
        if write_keys:
            writes = np.concatenate(write_keys)
            if np.unique(writes).size != writes.size:
                raise _Bail("write_collision")
            if read_keys and np.intersect1d(
                np.concatenate(read_keys), writes
            ).size:
                raise _Bail("read_write_overlap")

        self._verify_dataflow(streams, gemm, group)

        return _Plan(
            periods=periods,
            cycles=periods * period,
            end_cycle=sys._cycles + periods * period,
            delta=delta,
            streams=streams,
            tiles=periods * group,
        )

    def _prepare_stream(
        self, port: str, delta: np.ndarray, periods: int
    ) -> Optional[_StreamSpan]:
        """Check one streamer's uniform cadence and build its address span."""
        sys = self.system
        mem = sys.memory
        streamer = sys.streamers[port]
        d = lambda name: self._delta(delta, name)
        bundles = d(f"{port}.bundles")
        words = d(f"{port}.words")
        agu = streamer.agu
        if agu is None or agu.bundles_generated != streamer.bundles_generated:
            raise _Bail("agu_desync")

        channels: List[_ChannelSpan] = []
        for column, channel in enumerate(streamer._active()):
            rid = channel.requester_id
            state = mem._requesters.get(rid)
            granted = state.granted if state else 0
            moved = (
                d(f"{rid}.granted"),
                d(f"{rid}.issued"),
                d(f"{rid}.collected"),
            )
            if bundles == 0:
                if words or any(moved):
                    raise _Bail("quiescent_drift")
                if channel.outstanding or (
                    state is not None and (state.pending or state.responses)
                ):
                    # A frozen channel with traffic in the memory pipeline
                    # cannot stay frozen for a whole span.
                    raise _Bail("quiescent_traffic")
                continue
            if moved != (bundles, bundles, bundles) or words != bundles:
                raise _Bail("ragged_cadence")
            issued = channel.requests_issued
            collected = channel.responses_received
            popped = streamer.words_streamed
            pending = len(state.pending) if state else 0
            uncollected = granted - collected
            in_flight = sum(
                1 for r in mem._in_flight if r.requester == rid
            ) + (len(state.responses) if state else 0)
            consistent = (
                channel.address_fifo.occupancy
                == streamer.bundles_generated - issued
                and pending == issued - granted
                and channel.outstanding == issued - collected
                and in_flight == uncollected
            )
            if streamer.is_read:
                consistent = consistent and (
                    channel.data_fifo.occupancy == collected - popped
                )
            else:
                consistent = consistent and (
                    channel.data_fifo.occupancy == popped - issued
                )
            if not consistent:
                raise _Bail("window_mismatch")
            channels.append(
                _ChannelSpan(
                    channel=channel,
                    column=column,
                    granted=granted,
                    issued=issued,
                    collected=collected,
                    words=popped,
                )
            )

        if bundles == 0:
            return None
        lo = min(span.granted for span in channels)
        hi = min(
            streamer.bundles_generated + periods * bundles, agu.total_bundles
        )
        matrix = agu.address_matrix(lo, hi - lo, streamer.active_channels)
        banks, lines, offsets = streamer.remapper.decode_batch(matrix)
        return _StreamSpan(
            streamer=streamer,
            port=port,
            is_read=streamer.is_read,
            delta=bundles,
            generated=streamer.bundles_generated,
            lo=lo,
            matrix=matrix,
            banks=banks,
            lines=lines,
            offsets=offsets,
            channels=channels,
        )

    def _verify_dataflow(
        self, streams: List[_StreamSpan], gemm, group: int
    ) -> None:
        """The moving streams must be exactly the GeMM/quantizer dataflow."""
        sys = self.system
        job = gemm.job
        tile = gemm._tile_index
        rate = group * job.tiles_k
        consumers = {}
        if gemm.a_stream is not None:
            consumers[id(gemm.a_stream)] = ("a", rate, tile * job.tiles_k)
        if gemm.b_stream is not None:
            consumers[id(gemm.b_stream)] = ("b", rate, tile * job.tiles_k)
        if job.use_init_stream and gemm.c_stream is not None:
            consumers[id(gemm.c_stream)] = ("c", group, tile)
        if gemm.a_stream is gemm.b_stream:
            raise _Bail("shared_operand_stream")
        if sys._program.uses_quantizer:
            quantizer = sys.quantizer
            processed = quantizer.tiles_processed
            if quantizer._pending.occupancy != tile - processed:
                raise _Bail("quantizer_window")
            sink = quantizer.output_sink
            sink_base = processed
        else:
            sink = gemm.output_sink
            sink_base = tile
        seen_reads = set()
        write_spans = 0
        for span in streams:
            if span.is_read:
                entry = consumers.get(id(span.streamer))
                if entry is None:
                    raise _Bail("unconsumed_read_stream")
                _, stream_rate, base = entry
                if (
                    span.delta != stream_rate
                    or span.streamer.words_streamed != base
                ):
                    raise _Bail("operand_phase")
                seen_reads.add(id(span.streamer))
            else:
                write_spans += 1
                if span.streamer is not sink:
                    raise _Bail("unfed_write_stream")
                if (
                    span.delta != group
                    or span.streamer.words_streamed != sink_base
                ):
                    raise _Bail("sink_phase")
        # The replayer indexes operands/sink by these streams: every GeMM
        # consumer must be moving, and exactly one write span feeds memory.
        if seen_reads != set(consumers) or write_spans != 1:
            raise _Bail("dataflow_incomplete")

    # ------------------------------------------------------------------
    # Replay (mutating; all preconditions already verified).
    # ------------------------------------------------------------------
    def _commit(self, plan: _Plan) -> None:
        sys = self.system
        mem = sys.memory
        gemm = sys.gemm_core
        periods = plan.periods
        shift_cycles = plan.cycles
        stacked = mem.scratchpad.stacked_words()

        # 1. Assemble every read channel's word stream: the words currently
        #    queued in its pipeline followed by everything the span's grants
        #    will read — one gather over the stacked scratchpad per channel.
        combined: Dict[str, np.ndarray] = {}
        width = mem.geometry.bank_width_bytes
        for span in plan.streams:
            if not span.is_read:
                continue
            count = periods * span.delta
            for channel_span in span.channels:
                channel = channel_span.channel
                rid = channel.requester_id
                state = mem._requesters.get(rid)
                existing: List[np.ndarray] = channel.data_fifo.snapshot()
                if state is not None:
                    existing.extend(r.data for r in state.responses)
                existing.extend(
                    r.data for r in mem._in_flight if r.requester == rid
                )
                start = channel_span.granted - span.lo
                gathered = stacked[
                    span.banks[start : start + count, channel_span.column],
                    span.lines[start : start + count, channel_span.column],
                ]
                stackable = (
                    np.stack(existing)
                    if existing
                    else np.empty((0, width), dtype=np.uint8)
                )
                combined[rid] = np.concatenate([stackable, gathered])

        # 2. Collapse all MAC steps of all replayed tiles into one einsum.
        operands: Dict[int, np.ndarray] = {}
        for span in plan.streams:
            if not span.is_read:
                continue
            pops = periods * span.delta
            wide = np.concatenate(
                [
                    combined[channel_span.channel.requester_id][:pops]
                    for channel_span in span.channels
                ],
                axis=1,
            )
            operands[id(span.streamer)] = span.streamer.extensions.apply_batch(
                wide
            )
        a_words = operands[id(gemm.a_stream)]
        b_words = operands[id(gemm.b_stream)]
        c_words = (
            operands[id(gemm.c_stream)]
            if gemm.job.use_init_stream and gemm.c_stream is not None
            else None
        )
        tiles_out = plan.tiles
        out_bytes = gemm.compute_tiles_batch(tiles_out, a_words, b_words, c_words)

        # 3. Route the produced tiles through the sink chain.
        if sys._program.uses_quantizer:
            from ..accelerators.quantizer import rescale_tile_batch

            quantizer = sys.quantizer
            pending: List[np.ndarray] = quantizer._pending.snapshot()
            raw = np.concatenate(
                [
                    np.stack(pending)
                    if pending
                    else np.empty((0, out_bytes.shape[1]), dtype=np.uint8),
                    out_bytes,
                ]
            )
            tiles = (
                np.ascontiguousarray(raw[:tiles_out])
                .view(np.int32)
                .reshape(tiles_out, quantizer.rows, quantizer.cols)
            )
            rescaled = rescale_tile_batch(tiles, quantizer.config)
            sink_raw = (
                np.ascontiguousarray(rescaled)
                .view(np.uint8)
                .reshape(tiles_out, -1)
            )
            quantizer._pending.replace_entries(list(raw[tiles_out:]))
        else:
            sink_raw = out_bytes
        sink_span = next(span for span in plan.streams if not span.is_read)
        sink_words = sink_span.streamer.extensions.apply_batch(sink_raw)
        for channel_span in sink_span.channels:
            channel = channel_span.channel
            rid = channel.requester_id
            state = mem._requesters.get(rid)
            existing = [r.data for r in state.pending] if state else []
            existing.extend(channel.data_fifo.snapshot())
            slice_ = sink_words[
                :, channel_span.column * width : (channel_span.column + 1) * width
            ]
            stackable = (
                np.stack(existing)
                if existing
                else np.empty((0, width), dtype=np.uint8)
            )
            combined[rid] = np.concatenate([stackable, slice_])

        # 4. Scatter the span's writes (one assignment per touched bank).
        for span in plan.streams:
            if span.is_read:
                continue
            count = periods * span.delta
            for channel_span in span.channels:
                start = channel_span.granted - span.lo
                mem.scratchpad.scatter_words(
                    span.banks[start : start + count, channel_span.column],
                    span.lines[start : start + count, channel_span.column],
                    combined[channel_span.channel.requester_id][:count],
                )

        # 5. Advance every scalar counter by r x its per-period delta and
        #    fast-forward the AGUs.
        self._apply_delta(plan.delta, periods)
        for span in plan.streams:
            span.streamer.agu.fast_forward(periods * span.delta)

        # 6. Rebuild every queue as its position-shifted image.
        new_in_flight: Dict[str, List[MemoryResponse]] = {}
        for span in plan.streams:
            shift = periods * span.delta
            for channel_span in span.channels:
                channel = channel_span.channel
                rid = channel.requester_id
                state = mem._state(rid)
                stream = combined[rid]
                base = (
                    channel_span.words if span.is_read else channel_span.granted
                )

                def word_at(position: int) -> np.ndarray:
                    return stream[position - base]

                # Address FIFO: steps [issued+shift, generated+shift).
                channel.address_fifo.replace_entries(
                    ChannelAddress(
                        logical=int(span.matrix[step - span.lo, channel_span.column]),
                        location=BankLocation(
                            bank=int(span.banks[step - span.lo, channel_span.column]),
                            line=int(span.lines[step - span.lo, channel_span.column]),
                            byte_offset=int(
                                span.offsets[step - span.lo, channel_span.column]
                            ),
                        ),
                        step=step,
                    )
                    for step in range(
                        channel_span.issued + shift,
                        span.generated + shift,
                    )
                )
                # Pending requests: steps [granted+shift, issued+shift).
                state.pending = deque(
                    MemoryRequest(
                        requester=rid,
                        is_write=not span.is_read,
                        bank=int(span.banks[step - span.lo, channel_span.column]),
                        line=int(span.lines[step - span.lo, channel_span.column]),
                        data=None if span.is_read else word_at(step),
                        tag=step,
                        submit_cycle=request.submit_cycle + shift_cycles,
                    )
                    for step, request in zip(
                        range(
                            channel_span.granted + shift,
                            channel_span.issued + shift,
                        ),
                        state.pending,
                    )
                )
                # Delivered-but-uncollected responses, then the data FIFO.
                state.responses = deque(
                    MemoryResponse(
                        requester=rid,
                        is_write=response.is_write,
                        tag=response.tag + shift,
                        data=None
                        if response.data is None
                        else word_at(response.tag + shift),
                        ready_cycle=response.ready_cycle + shift_cycles,
                        grant_cycle=response.grant_cycle + shift_cycles,
                    )
                    for response in state.responses
                )
                if span.is_read:
                    channel.data_fifo.replace_entries(
                        word_at(position)
                        for position in range(
                            channel_span.words + shift,
                            channel_span.collected + shift,
                        )
                    )
                else:
                    channel.data_fifo.replace_entries(
                        word_at(position)
                        for position in range(
                            channel_span.issued + shift,
                            channel_span.words + shift,
                        )
                    )
                new_in_flight[rid] = [
                    MemoryResponse(
                        requester=rid,
                        is_write=response.is_write,
                        tag=response.tag + shift,
                        data=None
                        if response.data is None
                        else word_at(response.tag + shift),
                        ready_cycle=response.ready_cycle + shift_cycles,
                        grant_cycle=response.grant_cycle + shift_cycles,
                    )
                    for response in mem._in_flight
                    if response.requester == rid
                ]
        # Preserve the global delivery order of the in-flight list.
        replacements = {rid: iter(items) for rid, items in new_in_flight.items()}
        mem._in_flight = [
            next(replacements[response.requester]) for response in mem._in_flight
        ]

        # 7. The accumulator mirrors lockstep's dead-but-present last tile.
        gemm._accumulator = (
            np.ascontiguousarray(out_bytes[-1])
            .view(np.int32)
            .reshape(gemm.mu, gemm.nu)
            .copy()
        )
