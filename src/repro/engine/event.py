"""The next-event scheduler: skip cycles in which nothing can happen.

The event-driven engine executes real ``step()`` calls only for cycles in
which the model can change state, and fast-forwards over inactive spans:

1. step the target one cycle, exactly like lockstep;
2. if that step performed zero state changes (``last_step_activity == 0``)
   the model is at a *fixpoint*: every further cycle is provably identical
   until an external event arrives.  Ask the target for its next event
   (for the DataMaestro system the only timed event source is the memory's
   in-flight responses — everything else is combinationally blocked on them);
3. bulk-apply the span up to that event via ``advance(n)`` — components add
   the skipped cycles to their stall/idle counters (GeMM stalls, quantizer
   stalls, per-channel credit stalls) so statistics stay *exact* — and jump
   the clock;
4. if the target reports no future event at a fixpoint, the model is
   deadlocked: no amount of stepping will ever change anything, so the
   engine fast-forwards straight to the cycle budget and raises the same
   :class:`~repro.sim.result.SimulationLimitError` (same cycle count, same
   deadlock report, same bulk-advanced counters) that lockstep would reach
   after millions of no-op steps.

Because every *executed* cycle runs the unmodified phase code and every
*skipped* cycle is proven to be a no-op apart from the bulk-applied
counters, results are bit-identical to the lockstep engine; the parity
suite under ``tests/engine/`` enforces this across the experiment
workloads.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from .base import (
    EVENT_ENGINE,
    SimulationEngine,
    supports_event_protocol,
    supports_macro_protocol,
)


def _record_engine_run(jumps: int, skipped: int) -> None:
    """Fold one drive() into the process-wide registry (post-loop, cheap)."""
    registry = get_registry()
    registry.counter(
        "repro_engine_runs_total", "Simulations driven by the event engine."
    ).inc()
    if jumps:
        registry.counter(
            "repro_engine_macro_jumps_total",
            "Steady-span macro jumps taken across all engine runs.",
        ).inc(jumps)
        registry.counter(
            "repro_engine_macro_cycles_skipped_total",
            "Cycles bulk-advanced by the macro fast path across all runs.",
        ).inc(skipped)


class EventDrivenEngine(SimulationEngine):
    """Drives an :class:`~repro.engine.base.EventDriven` target to completion.

    Targets that additionally implement the macro protocol
    (``steady_span``/``advance_active``, see :mod:`repro.engine.steady`) get
    the vectorized fast path over *active* steady-state spans as well:
    after a step that completes an output tile, the engine asks the target
    for a verified periodic span and bulk-advances it.  ``macro_stepping=
    False`` restores the pure next-event scheduler (used by the engine
    benchmark to quantify the fast path's contribution).
    """

    name = EVENT_ENGINE

    def __init__(self, macro_stepping: bool = True) -> None:
        self.macro_stepping = bool(macro_stepping)

    def drive(
        self,
        target,
        max_cycles: int,
        describe: str = "simulation",
        detail: Optional[Union[str, Callable[[], str]]] = None,
        progress_callback: Optional[Callable[[int], None]] = None,
        progress_interval: int = 100_000,
    ) -> int:
        if not supports_event_protocol(target):
            raise TypeError(
                f"target {type(target).__name__} does not implement the "
                "event protocol (step/last_step_activity/next_event_cycle/"
                "advance); use the lockstep engine instead"
            )
        macro = self.macro_stepping and supports_macro_protocol(target)
        tracer = get_tracer()
        if tracer is not None:
            tracer.begin(
                "engine", describe, cat="engine", engine=self.name, macro=macro
            )
        jumps = 0
        skipped = 0
        cycles = 0
        busy = True
        try:
            while busy:
                if cycles >= max_cycles:
                    raise self._budget_error(describe, cycles, max_cycles, detail)
                busy = target.step()
                cycles += 1
                if progress_callback is not None and cycles % progress_interval == 0:
                    progress_callback(cycles)
                if busy and macro:
                    # Active steady state: bulk-advance whole verified periods.
                    span = target.steady_span(max_cycles - cycles)
                    if span > 0:
                        target.advance_active(span)
                        previous = cycles
                        cycles += span
                        jumps += 1
                        skipped += span
                        if tracer is not None:
                            tracer.instant(
                                "macro_jump", describe, cat="engine", span=span
                            )
                        if (
                            progress_callback is not None
                            and cycles // progress_interval
                            > previous // progress_interval
                        ):
                            progress_callback(cycles)
                        continue
                if not busy or target.last_step_activity:
                    continue

                # Fixpoint: nothing moved this cycle, so nothing can move until
                # the target's next self-scheduled event.
                event = target.next_event_cycle()
                if event is None:
                    # Deadlock.  Lockstep would spin to the budget accumulating
                    # stall counters; reproduce that state, then raise.
                    if max_cycles > cycles:
                        target.advance(max_cycles - cycles)
                        cycles = max_cycles
                    raise self._budget_error(describe, cycles, max_cycles, detail)
                span = min(event, max_cycles) - cycles
                if span > 0:
                    target.advance(span)
                    previous = cycles
                    cycles += span
                    if tracer is not None:
                        tracer.instant("idle_jump", describe, cat="engine", span=span)
                    if (
                        progress_callback is not None
                        and cycles // progress_interval
                        > previous // progress_interval
                    ):
                        progress_callback(cycles)
            return cycles
        finally:
            _record_engine_run(jumps, skipped)
            if tracer is not None:
                tracer.maybe_end("engine", describe, cat="engine", cycles=cycles)
