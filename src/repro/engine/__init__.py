"""Event-driven simulation kernel (and the legacy lockstep loop).

``repro.engine`` owns the loops that drive cycle-level models to completion.
The default, the **event-driven** engine, advances time directly to the next
cycle in which anything can happen instead of stepping every component every
cycle; the **lockstep** engine is the legacy per-cycle loop, retained as the
parity reference.  Both produce bit-identical results — identical cycle
counts, bank-conflict counts, per-streamer statistics and output tensors —
see ``docs/ENGINE.md``.

Select an engine wherever simulations are launched::

    system.run(program, engine="event")            # the default
    SimJob(workload=w, engine="lockstep")          # via the runtime
    python -m repro.cli batch gemm:64x64x64 --engine lockstep
"""

from .base import (
    DEFAULT_ENGINE,
    EVENT_ENGINE,
    LOCKSTEP_ENGINE,
    EventDriven,
    SimulationEngine,
    available_engines,
    get_engine,
    supports_event_protocol,
    validate_engine,
)
from .event import EventDrivenEngine
from .lockstep import LockstepEngine

__all__ = [
    "DEFAULT_ENGINE",
    "EVENT_ENGINE",
    "LOCKSTEP_ENGINE",
    "EventDriven",
    "SimulationEngine",
    "EventDrivenEngine",
    "LockstepEngine",
    "available_engines",
    "get_engine",
    "supports_event_protocol",
    "validate_engine",
]
