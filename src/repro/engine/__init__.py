"""Event-driven simulation kernel (and the legacy lockstep loop).

``repro.engine`` owns the loops that drive cycle-level models to completion.
The default, the **event-driven** engine, advances time directly to the next
cycle in which anything can happen instead of stepping every component every
cycle, and — for targets implementing the macro protocol — bulk-advances
*active* steady-state spans via the vectorized replayer in
:mod:`repro.engine.steady`; the **lockstep** engine is the legacy per-cycle
loop, retained as the parity reference.  All paths produce bit-identical
results — identical cycle counts, bank-conflict counts, per-streamer
statistics and output tensors — see ``docs/ENGINE.md``.

Select an engine wherever simulations are launched::

    system.run(program, engine="event")            # the default
    SimJob(workload=w, engine="lockstep")          # via the runtime
    python -m repro.cli batch gemm:64x64x64 --engine lockstep
"""

from .base import (
    DEFAULT_ENGINE,
    EVENT_ENGINE,
    LOCKSTEP_ENGINE,
    EventDriven,
    SimulationEngine,
    available_engines,
    get_engine,
    supports_event_protocol,
    supports_macro_protocol,
    validate_engine,
)
from .event import EventDrivenEngine
from .lockstep import LockstepEngine
from .steady import SteadySpanPlanner, SteadySpanStats

__all__ = [
    "DEFAULT_ENGINE",
    "EVENT_ENGINE",
    "LOCKSTEP_ENGINE",
    "EventDriven",
    "SimulationEngine",
    "EventDrivenEngine",
    "LockstepEngine",
    "SteadySpanPlanner",
    "SteadySpanStats",
    "available_engines",
    "get_engine",
    "supports_event_protocol",
    "supports_macro_protocol",
    "validate_engine",
]
