"""Simulation-engine protocol and registry.

An *engine* is the loop that drives a cycle-level model to completion.  Two
implementations ship with the package:

* ``"lockstep"`` (:class:`~repro.engine.lockstep.LockstepEngine`) — the
  legacy loop: call ``step()`` once per simulated clock cycle, every cycle.
* ``"event"`` (:class:`~repro.engine.event.EventDrivenEngine`) — the
  next-event scheduler: step only through cycles in which the model can
  change state, and fast-forward over provably inactive spans by
  bulk-applying them to the per-component stall/idle counters.  Results are
  bit-identical to lockstep (same cycle counts, same bank conflicts, same
  output tensors); see ``docs/ENGINE.md`` for the argument.

Engines drive *targets*.  Every target satisfies :class:`Steppable`
(``step() -> bool``, True while busy); the event engine additionally needs
the :class:`EventDriven` protocol — ``last_step_activity`` (state changes
performed by the most recent ``step()``), ``next_event_cycle()`` (earliest
future cycle at which anything can happen, ``None`` for "never") and
``advance(n)`` (bulk-apply ``n`` skipped cycles to the counters).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol, Union, runtime_checkable

from ..sim.result import SimulationLimitError

#: Registry name of the next-event scheduler.
EVENT_ENGINE = "event"
#: Registry name of the legacy one-step-per-cycle loop.
LOCKSTEP_ENGINE = "lockstep"
#: Engine used when the caller does not choose one.
DEFAULT_ENGINE = EVENT_ENGINE


@runtime_checkable
class EventDriven(Protocol):
    """Target protocol required by the event-driven engine."""

    #: Number of state-changing events the most recent ``step()`` performed.
    last_step_activity: int

    def step(self) -> bool:
        """Advance one cycle; return ``True`` while more work remains."""
        ...

    def next_event_cycle(self) -> Optional[int]:
        """Earliest future cycle with possible activity; ``None`` = never."""
        ...

    def advance(self, cycles: int) -> None:
        """Bulk-apply ``cycles`` provably inactive cycles to the counters."""
        ...


def supports_event_protocol(target: object) -> bool:
    """Whether ``target`` implements the full :class:`EventDriven` protocol."""
    return (
        callable(getattr(target, "step", None))
        and callable(getattr(target, "next_event_cycle", None))
        and callable(getattr(target, "advance", None))
        and hasattr(target, "last_step_activity")
    )


def supports_macro_protocol(target: object) -> bool:
    """Whether ``target`` can bulk-advance *active* steady-state spans.

    The macro protocol extends :class:`EventDriven` with ``steady_span(limit)
    -> int`` (cycles the target can macro-step right now; non-zero stages a
    plan) and ``advance_active(n)`` (commit that plan).  See
    :mod:`repro.engine.steady` for the contract.
    """
    return (
        callable(getattr(target, "steady_span", None))
        and callable(getattr(target, "advance_active", None))
    )


class SimulationEngine:
    """Interface every engine implements."""

    #: Registry name of the engine.
    name: str = "unnamed"

    def drive(
        self,
        target,
        max_cycles: int,
        describe: str = "simulation",
        detail: Optional[Union[str, Callable[[], str]]] = None,
        progress_callback: Optional[Callable[[int], None]] = None,
        progress_interval: int = 100_000,
    ) -> int:
        """Run ``target`` to completion; return the cycles consumed.

        Raises :class:`SimulationLimitError` when ``max_cycles`` is reached
        with work remaining.  ``describe`` names the run in the error
        message; ``detail`` (a string, or a zero-argument callable evaluated
        at raise time — e.g. a deadlock-report method) fills the error's
        ``detail`` field.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    @staticmethod
    def _budget_error(
        describe: str,
        cycles: int,
        max_cycles: int,
        detail: Optional[Union[str, Callable[[], str]]],
    ) -> SimulationLimitError:
        resolved = detail() if callable(detail) else detail
        return SimulationLimitError(
            message=f"{describe} exceeded its cycle budget",
            cycles=cycles,
            detail=resolved if resolved is not None else f"max_cycles={max_cycles}",
        )


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------
def get_engine(name: str) -> SimulationEngine:
    """Look up an engine by registry name (``"event"`` or ``"lockstep"``)."""
    from .event import EventDrivenEngine
    from .lockstep import LockstepEngine

    engines = {
        EVENT_ENGINE: EventDrivenEngine,
        LOCKSTEP_ENGINE: LockstepEngine,
    }
    try:
        return engines[name]()
    except KeyError:
        raise KeyError(
            f"unknown simulation engine {name!r}; available: {available_engines()}"
        ) from None


def available_engines() -> List[str]:
    """Names of every simulation engine."""
    return [EVENT_ENGINE, LOCKSTEP_ENGINE]


def validate_engine(name: str) -> str:
    """Return ``name`` if it is a known engine, raise ``ValueError`` otherwise."""
    if name not in available_engines():
        raise ValueError(
            f"unknown simulation engine {name!r}; available: {available_engines()}"
        )
    return name
