"""Quantization accelerator: ``E_8 = Rescale(D_32)`` (paper §IV-A, Fig. 6).

The quantizer post-processes the int32 accumulator tiles produced by the
GeMM core into int8 activations using the standard fixed-point requantization
scheme: multiply by an integer multiplier, arithmetic-shift right with
rounding, add the output zero point and saturate to the int8 range.  The
multiplier/shift can be scalar or per output channel (per column of the
tile), which is exactly the case where the Broadcaster extension pays off —
the per-channel parameters are small vectors that would otherwise have to be
duplicated across PE rows in memory.

The quantizer exposes the same sink interface as a write-mode DataMaestro
(:meth:`input_ready` / :meth:`push_input`) so the GeMM core can be routed to
either destination, and it forwards its int8 output words to the write-mode
DataMaestro *E*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..sim.fifo import Fifo
from ..utils.packing import bytes_to_tile, tile_to_bytes
from .gemm_core import StreamSink


@dataclass(frozen=True)
class QuantizationConfig:
    """Runtime configuration of the rescale operation."""

    multiplier: Union[int, np.ndarray] = 1
    shift: int = 0
    zero_point: int = 0

    def __post_init__(self) -> None:
        if self.shift < 0 or self.shift > 31:
            raise ValueError("shift must be within [0, 31]")
        if not -128 <= self.zero_point <= 127:
            raise ValueError("zero_point must fit in int8")


def rescale_tile(tile: np.ndarray, config: QuantizationConfig) -> np.ndarray:
    """Requantize an int32 tile to int8 (rounding, zero point, saturation).

    Delegates to :func:`rescale_tile_batch` so the per-cycle quantizer and
    the macro-step fast path share one arithmetic implementation — the bit
    parity between them can never drift.
    """
    return rescale_tile_batch(tile[np.newaxis, :, :], config)[0]


def rescale_tile_batch(
    tiles: np.ndarray, config: QuantizationConfig
) -> np.ndarray:
    """Requantize a ``(n, rows, cols)`` int32 tile stack in one pass.

    The single arithmetic implementation behind both :func:`rescale_tile`
    (per-cycle quantizer) and the macro-step fast path, which rescales a
    whole span's tiles at once.
    """
    accumulator = tiles.astype(np.int64)
    multiplier = np.asarray(config.multiplier, dtype=np.int64)
    if multiplier.ndim == 1:
        if multiplier.size != tiles.shape[2]:
            raise ValueError(
                f"per-channel multiplier has {multiplier.size} entries, "
                f"tile has {tiles.shape[2]} output channels"
            )
        scaled = accumulator * multiplier[np.newaxis, np.newaxis, :]
    else:
        scaled = accumulator * multiplier
    if config.shift > 0:
        rounding = np.int64(1) << (config.shift - 1)
        scaled = (scaled + rounding) >> config.shift
    shifted = scaled + config.zero_point
    return np.clip(shifted, -128, 127).astype(np.int8)


class Quantizer:
    """Cycle-level quantization accelerator."""

    def __init__(self, rows: int = 8, cols: int = 8, queue_depth: int = 2) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("tile dimensions must be positive")
        self.rows = int(rows)
        self.cols = int(cols)
        self.config = QuantizationConfig()
        self.output_sink: Optional[StreamSink] = None
        self._pending: Fifo[np.ndarray] = Fifo(queue_depth, name="quantizer.pending")
        self.tiles_processed = 0
        self.stall_cycles = 0

    # ------------------------------------------------------------------
    def bind(self, output_sink: StreamSink) -> None:
        """Connect the quantizer output to its write-mode DataMaestro."""
        self.output_sink = output_sink

    def configure(self, config: QuantizationConfig) -> None:
        self.config = config
        self._pending.clear()
        self.tiles_processed = 0
        self.stall_cycles = 0

    # ------------------------------------------------------------------
    # Sink interface used by the GeMM core.
    # ------------------------------------------------------------------
    def input_ready(self) -> bool:
        return not self._pending.is_full

    def push_input(self, word: np.ndarray) -> None:
        if self._pending.is_full:
            raise RuntimeError("quantizer accepted a word while not ready")
        self._pending.push(np.asarray(word, dtype=np.uint8))

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return not self._pending.is_empty

    # ------------------------------------------------------------------
    # Next-event protocol (see repro.engine).
    # ------------------------------------------------------------------
    def next_event_cycle(self, now: int) -> Optional[int]:
        """``now`` when a pending tile can be rescaled, else ``None``."""
        if self.busy and self.output_sink is not None and self.output_sink.input_ready():
            return now
        return None

    def advance(self, cycles: int) -> None:
        """Bulk-apply ``cycles`` skipped cycles to the stall counter."""
        if self.busy:
            self.stall_cycles += cycles

    def step(self) -> bool:
        """Requantize one pending tile if the output streamer can accept it."""
        if self._pending.is_empty:
            return False
        if self.output_sink is None:
            raise RuntimeError("quantizer stepped before bind()")
        if not self.output_sink.input_ready():
            self.stall_cycles += 1
            return False
        word = self._pending.pop()
        tile = bytes_to_tile(word, (self.rows, self.cols), np.int32)
        quantized = rescale_tile(tile, self.config)
        self.output_sink.push_input(tile_to_bytes(quantized))
        self.tiles_processed += 1
        return True

    def statistics(self) -> dict:
        return {
            "tiles_processed": self.tiles_processed,
            "stall_cycles": self.stall_cycles,
        }
