"""Accelerator datapaths served by the DataMaestros (GeMM core, quantizer)."""

from .gemm_core import GemmCore, GemmJob, StreamSink, StreamSource
from .quantizer import QuantizationConfig, Quantizer, rescale_tile

__all__ = [
    "GemmCore",
    "GemmJob",
    "StreamSink",
    "StreamSource",
    "Quantizer",
    "QuantizationConfig",
    "rescale_tile",
]
