"""Tensor-Core-like GeMM accelerator datapath (paper §IV-A, Fig. 6).

The GeMM core is a 3-D ``Mu × Nu × Ku`` MAC array that executes
``D_32 = A_8 ⊗ B_8 + C_32``: every cycle it consumes one ``Mu × Ku`` int8
tile of A and one ``Ku × Nu`` int8 tile of B, and accumulates into a local
``Mu × Nu`` int32 tile.  At the first reduction step of an output tile the
accumulator is initialised from the C stream (or zero); after the last
reduction step the accumulated tile is pushed to the output sink — either a
write-mode DataMaestro or the quantization accelerator.

Whether the tiles represent a plain GeMM, a transposed GeMM or an
(implicitly im2col-ed) convolution is entirely determined by how the
DataMaestros are programmed; the core itself is workload agnostic, exactly as
in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

import numpy as np

from ..utils.packing import bytes_to_tile, tile_to_bytes


class StreamSource(Protocol):
    """Read-side interface the core expects (provided by DataMaestro)."""

    def output_valid(self) -> bool: ...

    def pop_output(self) -> np.ndarray: ...


class StreamSink(Protocol):
    """Write-side interface the core expects (DataMaestro or Quantizer)."""

    def input_ready(self) -> bool: ...

    def push_input(self, word: np.ndarray) -> None: ...


@dataclass(frozen=True)
class GemmJob:
    """One kernel launch for the GeMM core (all sizes in tiles).

    ``tiles_m``/``tiles_n`` span the output, ``tiles_k`` is the reduction
    depth per output tile.  ``use_init_stream`` selects whether the
    accumulator is initialised from the C stream (bias / partial sums) or
    from zero.
    """

    tiles_m: int
    tiles_n: int
    tiles_k: int
    use_init_stream: bool = True

    def __post_init__(self) -> None:
        if self.tiles_m <= 0 or self.tiles_n <= 0 or self.tiles_k <= 0:
            raise ValueError("tile counts must be positive")

    @property
    def output_tiles(self) -> int:
        return self.tiles_m * self.tiles_n

    @property
    def ideal_compute_cycles(self) -> int:
        """Cycles needed with one MAC step per cycle and no stalls."""
        return self.tiles_m * self.tiles_n * self.tiles_k


class GemmCore:
    """Cycle-level model of the ``Mu × Nu × Ku`` int8/int32 MAC array."""

    def __init__(self, mu: int = 8, nu: int = 8, ku: int = 8) -> None:
        if mu <= 0 or nu <= 0 or ku <= 0:
            raise ValueError("PE array dimensions must be positive")
        self.mu = int(mu)
        self.nu = int(nu)
        self.ku = int(ku)
        self.a_stream: Optional[StreamSource] = None
        self.b_stream: Optional[StreamSource] = None
        self.c_stream: Optional[StreamSource] = None
        self.output_sink: Optional[StreamSink] = None
        self.job: Optional[GemmJob] = None
        self._tile_index = 0
        self._k_index = 0
        self._accumulator = np.zeros((self.mu, self.nu), dtype=np.int32)
        self.mac_cycles = 0
        self.stall_cycles = 0

    # ------------------------------------------------------------------
    @property
    def num_pes(self) -> int:
        """Number of MAC units in the array."""
        return self.mu * self.nu * self.ku

    @property
    def a_word_bytes(self) -> int:
        return self.mu * self.ku

    @property
    def b_word_bytes(self) -> int:
        return self.ku * self.nu

    @property
    def acc_word_bytes(self) -> int:
        return self.mu * self.nu * 4

    # ------------------------------------------------------------------
    def bind(
        self,
        a_stream: StreamSource,
        b_stream: StreamSource,
        output_sink: StreamSink,
        c_stream: Optional[StreamSource] = None,
    ) -> None:
        """Connect the core's ports to its streaming engines."""
        self.a_stream = a_stream
        self.b_stream = b_stream
        self.c_stream = c_stream
        self.output_sink = output_sink

    def configure(self, job: GemmJob) -> None:
        """Prepare the core for one kernel launch."""
        if job.use_init_stream and self.c_stream is None:
            raise ValueError("job requests an init stream but none is bound")
        self.job = job
        self._tile_index = 0
        self._k_index = 0
        self._accumulator = np.zeros((self.mu, self.nu), dtype=np.int32)
        self.mac_cycles = 0
        self.stall_cycles = 0

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.job is not None and self._tile_index >= self.job.output_tiles

    @property
    def busy(self) -> bool:
        return self.job is not None and not self.done

    @property
    def progress(self) -> float:
        if self.job is None:
            return 0.0
        total = self.job.ideal_compute_cycles
        completed = self._tile_index * self.job.tiles_k + self._k_index
        return completed / total if total else 1.0

    # ------------------------------------------------------------------
    def _inputs_available(self) -> bool:
        assert self.job is not None
        if self.a_stream is None or self.b_stream is None:
            raise RuntimeError("GeMM core stepped before bind()")
        if not self.a_stream.output_valid():
            return False
        if not self.b_stream.output_valid():
            return False
        needs_init = self.job.use_init_stream and self._k_index == 0
        if needs_init and not self.c_stream.output_valid():
            return False
        produces_output = self._k_index == self.job.tiles_k - 1
        if produces_output:
            if self.output_sink is None:
                raise RuntimeError("GeMM core has no output sink bound")
            if not self.output_sink.input_ready():
                return False
        return True

    def can_fire(self) -> bool:
        """Whether a MAC step would fire this cycle (operands + sink ready)."""
        return self.busy and self._inputs_available()

    # ------------------------------------------------------------------
    # Next-event protocol (see repro.engine).
    # ------------------------------------------------------------------
    def next_event_cycle(self, now: int) -> Optional[int]:
        """``now`` while a MAC burst can continue, else ``None``.

        The core is purely data-driven: when it cannot fire it is waiting on
        a streamer word or on sink back-pressure, and the component that
        resolves the wait reports the wake-up event.
        """
        return now if self.can_fire() else None

    def advance(self, cycles: int) -> None:
        """Bulk-apply ``cycles`` skipped cycles to the stall counter.

        Matches what per-cycle :meth:`step` calls would have recorded: a
        busy core that cannot fire stalls every cycle of the span.
        """
        if self.busy:
            self.stall_cycles += cycles

    def compute_tiles_batch(
        self,
        count: int,
        a_words: np.ndarray,
        b_words: np.ndarray,
        c_words: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Pure batched datapath: ``count`` whole output tiles in one einsum.

        ``a_words``/``b_words`` are ``(count * tiles_k, word_bytes)`` uint8
        batches of the operand words the core would pop cycle by cycle;
        ``c_words`` is the ``(count, acc_word_bytes)`` init-stream batch (or
        ``None`` for zero initialisation).  Returns the ``(count,
        acc_word_bytes)`` byte images the core would push to its sink —
        bit-identical to ``count * tiles_k`` sequential MAC steps, because
        int32 accumulation is associative even under wraparound.  Counters
        and indices are *not* touched; the macro-step replayer owns those.
        """
        assert self.job is not None
        k = self.job.tiles_k
        a_tiles = (
            np.ascontiguousarray(a_words, dtype=np.uint8)
            .view(np.int8)
            .reshape(count, k, self.mu, self.ku)
            .astype(np.int32)
        )
        b_tiles = (
            np.ascontiguousarray(b_words, dtype=np.uint8)
            .view(np.int8)
            .reshape(count, k, self.ku, self.nu)
            .astype(np.int32)
        )
        acc = np.einsum("tkij,tkjl->til", a_tiles, b_tiles, dtype=np.int32)
        if c_words is not None:
            acc = acc + (
                np.ascontiguousarray(c_words, dtype=np.uint8)
                .view(np.int32)
                .reshape(count, self.mu, self.nu)
            )
        acc = np.ascontiguousarray(acc, dtype=np.int32)
        return acc.view(np.uint8).reshape(count, -1)

    def step(self) -> bool:
        """Advance one cycle; return True if a MAC step fired."""
        if self.job is None or self.done:
            return False
        if not self._inputs_available():
            self.stall_cycles += 1
            return False

        if self._k_index == 0:
            if self.job.use_init_stream:
                init_word = self.c_stream.pop_output()
                self._accumulator = bytes_to_tile(
                    init_word, (self.mu, self.nu), np.int32
                )
            else:
                self._accumulator = np.zeros((self.mu, self.nu), dtype=np.int32)

        a_tile = bytes_to_tile(
            self.a_stream.pop_output(), (self.mu, self.ku), np.int8
        ).astype(np.int32)
        b_tile = bytes_to_tile(
            self.b_stream.pop_output(), (self.ku, self.nu), np.int8
        ).astype(np.int32)
        self._accumulator = self._accumulator + a_tile @ b_tile
        self.mac_cycles += 1

        self._k_index += 1
        if self._k_index == self.job.tiles_k:
            self.output_sink.push_input(tile_to_bytes(self._accumulator))
            self._k_index = 0
            self._tile_index += 1
        return True

    # ------------------------------------------------------------------
    def statistics(self) -> dict:
        return {
            "mac_cycles": self.mac_cycles,
            "stall_cycles": self.stall_cycles,
            "tiles_completed": self._tile_index,
        }
