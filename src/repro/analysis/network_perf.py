"""Network-level performance estimation (paper §IV-C, Table III).

The paper benchmarks four full DNNs on the FPGA prototype and reports the
GeMM-core utilization of each network.  Cycle-simulating every full-size
layer in pure Python would take hours, so this module uses the approach
documented in DESIGN.md: every *unique* layer is reduced to a representative
crop that preserves the properties governing its steady-state utilization
(channel counts modulo the PE tiling, kernel size, stride, operand layouts),
the crop is cycle-simulated on the real system model, and the measured
utilization is applied to the full layer's ideal cycle count.  The network
utilization is then the compute-weighted aggregate over all layers — the same
definition the paper uses (theoretical cycles over active cycles).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.params import FeatureSet
from ..engine import DEFAULT_ENGINE
from ..runtime.job import SimJob
from ..runtime.simulator import Simulator
from ..system.design import AcceleratorSystemDesign, datamaestro_evaluation_system
from ..utils.packing import ceil_div
from ..workloads.networks import NetworkModel
from ..workloads.spec import ConvWorkload, GemmWorkload, Workload


# ----------------------------------------------------------------------
# Representative crops.
# ----------------------------------------------------------------------
def representative_crop(
    workload: Workload,
    max_gemm_m: int = 64,
    max_gemm_n: int = 64,
    max_gemm_k: int = 128,
    max_conv_out: int = 14,
    max_conv_channels: int = 32,
) -> Workload:
    """Scale a layer down to a crop with the same steady-state behaviour.

    The crop preserves kernel size, stride, padding, operand dtypes and the
    *residues* of the channel dimensions with respect to the PE tiling
    (by capping at multiples of the tile sizes), which are what determine
    per-tile access patterns and therefore utilization; only the number of
    repeated tiles is reduced.
    """
    if isinstance(workload, GemmWorkload):
        return workload.scaled(
            name=f"{workload.name}__crop",
            m=min(workload.m, max_gemm_m),
            n=min(workload.n, max_gemm_n),
            k=min(workload.k, max_gemm_k),
        )
    if isinstance(workload, ConvWorkload):
        out_h = min(workload.out_height, max_conv_out)
        out_w = min(workload.out_width, max_conv_out)
        new_in_h = (out_h - 1) * workload.stride + workload.kernel_h - 2 * workload.padding
        new_in_w = (out_w - 1) * workload.stride + workload.kernel_w - 2 * workload.padding
        new_in_h = max(new_in_h, workload.kernel_h)
        new_in_w = max(new_in_w, workload.kernel_w)
        return workload.scaled(
            name=f"{workload.name}__crop",
            in_height=min(workload.in_height, new_in_h),
            in_width=min(workload.in_width, new_in_w),
            in_channels=min(workload.in_channels, max_conv_channels),
            out_channels=min(workload.out_channels, max_conv_channels),
        )
    raise TypeError(f"unsupported workload type {type(workload)!r}")


# ----------------------------------------------------------------------
# Per-layer and per-network estimation.
# ----------------------------------------------------------------------
@dataclass
class LayerEstimate:
    """Utilization estimate of one unique layer."""

    name: str
    group: str
    count: int
    ideal_cycles_full: int
    utilization: float
    crop_name: str
    crop_cycles: int

    @property
    def estimated_cycles_full(self) -> float:
        return self.ideal_cycles_full / max(self.utilization, 1e-9)


@dataclass
class NetworkEstimate:
    """Aggregated utilization of one network (one Table III column)."""

    network: str
    kind: str
    layers: List[LayerEstimate] = field(default_factory=list)

    @property
    def total_ideal_cycles(self) -> float:
        return float(
            sum(layer.ideal_cycles_full * layer.count for layer in self.layers)
        )

    @property
    def total_estimated_cycles(self) -> float:
        return float(
            sum(layer.estimated_cycles_full * layer.count for layer in self.layers)
        )

    @property
    def utilization(self) -> float:
        total = self.total_estimated_cycles
        if total <= 0:
            return 0.0
        return self.total_ideal_cycles / total

    @property
    def utilization_percent(self) -> float:
        return 100.0 * self.utilization

    def worst_layer(self) -> Optional[LayerEstimate]:
        if not self.layers:
            return None
        return min(self.layers, key=lambda layer: layer.utilization)


class NetworkPerformanceEstimator:
    """Estimates Table III by cycle-simulating representative layer crops."""

    def __init__(
        self,
        design: Optional[AcceleratorSystemDesign] = None,
        features: Optional[FeatureSet] = None,
        seed: int = 0,
        simulator: Optional[Simulator] = None,
        engine: str = DEFAULT_ENGINE,
    ) -> None:
        self.design = design or datamaestro_evaluation_system()
        self.features = features or FeatureSet.all_enabled()
        self.simulator = simulator or Simulator()
        self.seed = seed
        self.engine = engine
        self._cache: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def _ideal_cycles(self, workload: Workload) -> int:
        return workload.ideal_compute_cycles(
            self.design.gemm_mu, self.design.gemm_nu, self.design.gemm_ku
        )

    def layer_utilization(self, workload: Workload) -> LayerEstimate:
        """Measure the utilization of one layer via its representative crop."""
        crop = representative_crop(workload)
        cached = self._cache.get(crop.name)
        if cached is None:
            outcome = self.simulator.simulate(
                SimJob(
                    workload=crop,
                    design=self.design,
                    features=self.features,
                    seed=self.seed,
                    engine=self.engine,
                    label=f"crop:{workload.name}",
                )
            )
            cached = outcome.utilization
            self._cache[crop.name] = cached
            crop_cycles = outcome.kernel_cycles
        else:
            crop_cycles = int(round(self._ideal_cycles(crop) / max(cached, 1e-9)))
        return LayerEstimate(
            name=workload.name,
            group=workload.group.value,
            count=1,
            ideal_cycles_full=self._ideal_cycles(workload),
            utilization=cached,
            crop_name=crop.name,
            crop_cycles=crop_cycles,
        )

    def estimate_network(self, model: NetworkModel) -> NetworkEstimate:
        """Estimate the GeMM-core utilization of one network."""
        estimate = NetworkEstimate(network=model.name, kind=model.kind)
        for layer in model.layers:
            layer_estimate = self.layer_utilization(layer.workload)
            layer_estimate.count = layer.count
            estimate.layers.append(layer_estimate)
        return estimate

    def estimate_networks(
        self, models: Dict[str, NetworkModel]
    ) -> Dict[str, NetworkEstimate]:
        return {name: self.estimate_network(model) for name, model in models.items()}


def tiles_summary(workload: Workload, design: AcceleratorSystemDesign) -> Dict[str, int]:
    """Small helper used in reports: tiling of a layer on the system."""
    mu, nu, ku = design.gemm_mu, design.gemm_nu, design.gemm_ku
    if isinstance(workload, GemmWorkload):
        tiles_m, tiles_n, tiles_k = workload.tile_counts(mu, nu, ku)
    else:
        tiles_m, tiles_n, tiles_k = workload.as_gemm_dims(mu, nu, ku)
    return {
        "tiles_m": tiles_m,
        "tiles_n": tiles_n,
        "tiles_k": tiles_k,
        "ideal_cycles": tiles_m * tiles_n * tiles_k,
        "output_tiles": tiles_m * tiles_n,
        "words_per_step": ceil_div(mu * ku + ku * nu, design.memory.bank_width_bytes),
    }
