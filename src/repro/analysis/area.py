"""Parametric cell-area model (paper Fig. 9(a)/(b)) and FPGA resources (Fig. 8).

Every structure is enumerated from the same design-time parameters the
simulator uses (Table II), multiplied by the per-unit costs in
:mod:`repro.analysis.technology`.  The reproduced quantity is the breakdown —
which component dominates and the relative shares — rather than signed-off
mm² numbers; see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.params import StreamerDesign
from ..system.design import AcceleratorSystemDesign, datamaestro_evaluation_system
from .technology import (
    AreaCoefficients,
    DEFAULT_AREA,
    DEFAULT_FPGA,
    FpgaCoefficients,
)


@dataclass
class StreamerAreaBreakdown:
    """Area composition of one DataMaestro (Fig. 9(b) style)."""

    name: str
    fifo_buffers: float = 0.0
    agu: float = 0.0
    mic: float = 0.0
    address_remapper: float = 0.0
    extensions: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return (
            self.fifo_buffers
            + self.agu
            + self.mic
            + self.address_remapper
            + sum(self.extensions.values())
        )

    def shares_percent(self) -> Dict[str, float]:
        total = self.total or 1.0
        shares = {
            "fifo_buffers": 100.0 * self.fifo_buffers / total,
            "agu": 100.0 * self.agu / total,
            "mic": 100.0 * self.mic / total,
            "address_remapper": 100.0 * self.address_remapper / total,
        }
        for kind, area in self.extensions.items():
            shares[kind] = 100.0 * area / total
        return shares


@dataclass
class SystemAreaBreakdown:
    """Area of the whole evaluation system (Fig. 9(a) style)."""

    memory_subsystem: float
    riscv_host: float
    gemm_accelerator: float
    quantizer: float
    streamers: Dict[str, StreamerAreaBreakdown]

    @property
    def datamaestros_total(self) -> float:
        return sum(streamer.total for streamer in self.streamers.values())

    @property
    def total(self) -> float:
        return (
            self.memory_subsystem
            + self.riscv_host
            + self.gemm_accelerator
            + self.quantizer
            + self.datamaestros_total
        )

    def shares_percent(self) -> Dict[str, float]:
        total = self.total or 1.0
        return {
            "memory_subsystem": 100.0 * self.memory_subsystem / total,
            "riscv_host": 100.0 * self.riscv_host / total,
            "gemm_accelerator": 100.0 * self.gemm_accelerator / total,
            "quantizer": 100.0 * self.quantizer / total,
            "datamaestros": 100.0 * self.datamaestros_total / total,
        }

    def streamer_shares_percent(self) -> Dict[str, float]:
        total = self.total or 1.0
        return {
            name: 100.0 * streamer.total / total
            for name, streamer in self.streamers.items()
        }


class AreaModel:
    """Component-level area model of an accelerator system design."""

    def __init__(
        self,
        design: Optional[AcceleratorSystemDesign] = None,
        coefficients: Optional[AreaCoefficients] = None,
    ) -> None:
        self.design = design or datamaestro_evaluation_system()
        self.coeff = coefficients or DEFAULT_AREA

    # ------------------------------------------------------------------
    # Per-component areas.
    # ------------------------------------------------------------------
    def streamer_area(self, streamer: StreamerDesign) -> StreamerAreaBreakdown:
        coeff = self.coeff
        breakdown = StreamerAreaBreakdown(name=streamer.name)

        data_bits = (
            streamer.num_channels
            * streamer.data_buffer_depth
            * streamer.bank_width_bits
        )
        addr_bits = (
            streamer.num_channels
            * streamer.address_buffer_depth
            * coeff.address_bits
        )
        breakdown.fifo_buffers = (data_bits + addr_bits) * coeff.fifo_bit

        # Dual-counter temporal AGU + spatial adder tree.
        temporal_bits = streamer.temporal_dims * 2 * 32
        spatial_bits = streamer.spatial_dims * 32
        adders = streamer.temporal_dims + streamer.spatial_dims + 1
        breakdown.agu = (
            (temporal_bits + spatial_bits) * coeff.register_bit
            + adders * coeff.adder_32
        )

        breakdown.mic = streamer.num_channels * coeff.mic_per_channel

        num_options = len(self.design.memory.resolved_group_options())
        breakdown.address_remapper = (
            num_options * streamer.num_channels * coeff.remapper_per_option_per_channel
        )

        word_bytes = streamer.word_bytes
        for spec in streamer.extensions:
            if spec.kind == "transposer":
                breakdown.extensions["transposer"] = (
                    word_bytes * coeff.transposer_per_byte
                )
            elif spec.kind == "broadcaster":
                breakdown.extensions["broadcaster"] = (
                    word_bytes * coeff.broadcaster_per_byte
                )
            else:
                breakdown.extensions[spec.kind] = word_bytes * coeff.broadcaster_per_byte
        return breakdown

    def memory_area(self) -> float:
        memory = self.design.memory
        coeff = self.coeff
        sram_bits = memory.capacity_bytes * 8
        total_channels = sum(s.num_channels for s in self.design.streamers)
        crossbar = (
            total_channels * memory.bank_width_bits * coeff.crossbar_per_channel_bit
        ) * memory.num_banks ** 0.5
        return sram_bits * coeff.sram_bit + crossbar

    def gemm_area(self) -> float:
        coeff = self.coeff
        design = self.design
        macs = design.num_pes
        accumulator_bits = design.gemm_mu * design.gemm_nu * 32
        return macs * coeff.int8_mac + accumulator_bits * coeff.register_bit

    def quantizer_area(self) -> float:
        return self.design.gemm_nu * self.coeff.quantizer_lane

    def host_area(self) -> float:
        return self.coeff.riscv_host

    # ------------------------------------------------------------------
    def system_breakdown(self) -> SystemAreaBreakdown:
        return SystemAreaBreakdown(
            memory_subsystem=self.memory_area(),
            riscv_host=self.host_area(),
            gemm_accelerator=self.gemm_area(),
            quantizer=self.quantizer_area(),
            streamers={
                streamer.name: self.streamer_area(streamer)
                for streamer in self.design.streamers
            },
        )


# ----------------------------------------------------------------------
# FPGA resource model (Fig. 8).
# ----------------------------------------------------------------------
@dataclass
class FpgaResources:
    """LUT/register estimate of the evaluation system on the FPGA."""

    luts_gemm: float
    regs_gemm: float
    luts_datamaestros: float
    regs_datamaestros: float
    luts_quantizer: float
    regs_quantizer: float
    luts_memory: float
    regs_memory: float
    luts_host_and_interconnect: float
    regs_host_and_interconnect: float

    @property
    def luts_total(self) -> float:
        return (
            self.luts_gemm
            + self.luts_datamaestros
            + self.luts_quantizer
            + self.luts_memory
            + self.luts_host_and_interconnect
        )

    @property
    def regs_total(self) -> float:
        return (
            self.regs_gemm
            + self.regs_datamaestros
            + self.regs_quantizer
            + self.regs_memory
            + self.regs_host_and_interconnect
        )

    def shares_percent(self) -> Dict[str, float]:
        return {
            "luts_gemm_percent": 100.0 * self.luts_gemm / self.luts_total,
            "regs_gemm_percent": 100.0 * self.regs_gemm / self.regs_total,
            "luts_datamaestros_percent": 100.0 * self.luts_datamaestros / self.luts_total,
            "regs_datamaestros_percent": 100.0 * self.regs_datamaestros / self.regs_total,
        }


class FpgaResourceModel:
    """First-order FPGA LUT/FF model of the evaluation system."""

    def __init__(
        self,
        design: Optional[AcceleratorSystemDesign] = None,
        coefficients: Optional[FpgaCoefficients] = None,
    ) -> None:
        self.design = design or datamaestro_evaluation_system()
        self.coeff = coefficients or DEFAULT_FPGA

    def _streamer_luts_regs(self, streamer: StreamerDesign) -> tuple:
        coeff = self.coeff
        data_bits = (
            streamer.num_channels
            * streamer.data_buffer_depth
            * streamer.bank_width_bits
        )
        dims = streamer.temporal_dims + streamer.spatial_dims
        luts = (
            data_bits * coeff.luts_per_fifo_bit
            + dims * coeff.luts_per_agu_dim
            + streamer.num_channels * coeff.luts_per_channel
        )
        regs = (
            data_bits * coeff.regs_per_fifo_bit
            + dims * coeff.regs_per_agu_dim
            + streamer.num_channels * coeff.regs_per_channel
        )
        return luts, regs

    def estimate(self) -> FpgaResources:
        coeff = self.coeff
        design = self.design
        dm_luts = 0.0
        dm_regs = 0.0
        for streamer in design.streamers:
            luts, regs = self._streamer_luts_regs(streamer)
            dm_luts += luts
            dm_regs += regs
        return FpgaResources(
            luts_gemm=design.num_pes * coeff.luts_per_mac,
            regs_gemm=design.num_pes * coeff.regs_per_mac,
            luts_datamaestros=dm_luts,
            regs_datamaestros=dm_regs,
            luts_quantizer=design.gemm_nu * coeff.luts_per_quantizer_lane,
            regs_quantizer=design.gemm_nu * coeff.regs_per_quantizer_lane,
            luts_memory=design.memory.num_banks * coeff.luts_per_bank,
            regs_memory=design.memory.num_banks * coeff.regs_per_bank,
            luts_host_and_interconnect=coeff.luts_host_and_interconnect,
            regs_host_and_interconnect=coeff.regs_host_and_interconnect,
        )
