"""Ablation-study driver (paper §IV-B, Figure 7).

The paper evaluates six architecture points by progressively enabling the
DataMaestro features on top of a plain-data-mover baseline:

    ① baseline → ② +fine-grained prefetch → ③ +Transposer → ④ +Broadcaster
    → ⑤ +implicit im2col → ⑥ +addressing-mode switching

over a synthetic suite of GeMM / transposed-GeMM / convolution workloads, and
reports (a) the GeMM-core utilization distribution per group and architecture
and (b) the data access counts normalized to the baseline.

:class:`AblationStudy` runs exactly that sweep on the cycle-level system and
exposes the same two summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.params import ABLATION_STEPS, FeatureSet
from ..engine import DEFAULT_ENGINE
from ..runtime.job import SimJob
from ..runtime.outcome import SimOutcome
from ..runtime.simulator import Simulator
from ..system.design import AcceleratorSystemDesign, datamaestro_evaluation_system
from ..workloads.spec import Workload, WorkloadGroup
from ..workloads.synthetic import stratified_subset, synthetic_suite
from .metrics import BoxStats

#: Human-readable labels matching the paper's circled architecture numbers.
STEP_LABELS = {
    "1_baseline": "(1) baseline",
    "2_prefetch": "(2) +prefetch",
    "3_transposer": "(3) +transposer",
    "4_broadcaster": "(4) +broadcaster",
    "5_im2col": "(5) +implicit im2col",
    "6_full": "(6) +addr-mode switching",
}


@dataclass(frozen=True)
class AblationEntry:
    """One (architecture step, workload) simulation outcome."""

    step: str
    group: WorkloadGroup
    workload_name: str
    ideal_cycles: int
    kernel_cycles: int
    utilization: float
    memory_accesses: int
    bank_conflicts: int


@dataclass
class AblationResults:
    """All entries of one ablation sweep plus the paper-style summaries."""

    entries: List[AblationEntry] = field(default_factory=list)

    # ------------------------------------------------------------------
    def steps(self) -> List[str]:
        ordered = [name for name, _ in ABLATION_STEPS]
        present = {entry.step for entry in self.entries}
        return [name for name in ordered if name in present]

    def groups(self) -> List[WorkloadGroup]:
        present = {entry.group for entry in self.entries}
        return [group for group in WorkloadGroup if group in present]

    def _select(self, step: str, group: WorkloadGroup) -> List[AblationEntry]:
        return [
            entry
            for entry in self.entries
            if entry.step == step and entry.group == group
        ]

    # ------------------------------------------------------------------
    # Figure 7(a): utilization distribution and averages.
    # ------------------------------------------------------------------
    def utilization_distribution(self) -> Dict[WorkloadGroup, Dict[str, BoxStats]]:
        summary: Dict[WorkloadGroup, Dict[str, BoxStats]] = {}
        for group in self.groups():
            summary[group] = {}
            for step in self.steps():
                samples = [e.utilization for e in self._select(step, group)]
                if samples:
                    summary[group][step] = BoxStats.from_samples(samples)
        return summary

    def mean_utilization(self) -> Dict[WorkloadGroup, Dict[str, float]]:
        return {
            group: {step: stats.mean for step, stats in by_step.items()}
            for group, by_step in self.utilization_distribution().items()
        }

    def speedup_over_baseline(self) -> Dict[WorkloadGroup, Dict[str, float]]:
        """Per-group mean speedup of each step vs architecture ①."""
        speedups: Dict[WorkloadGroup, Dict[str, float]] = {}
        baseline_step = self.steps()[0]
        for group in self.groups():
            baseline_cycles = {
                e.workload_name: e.kernel_cycles
                for e in self._select(baseline_step, group)
            }
            speedups[group] = {}
            for step in self.steps():
                ratios = []
                for entry in self._select(step, group):
                    base = baseline_cycles.get(entry.workload_name)
                    if base:
                        ratios.append(base / entry.kernel_cycles)
                if ratios:
                    speedups[group][step] = sum(ratios) / len(ratios)
        return speedups

    # ------------------------------------------------------------------
    # Figure 7(b): data access counts normalized to the baseline.
    # ------------------------------------------------------------------
    def normalized_access_counts(self) -> Dict[WorkloadGroup, Dict[str, float]]:
        normalized: Dict[WorkloadGroup, Dict[str, float]] = {}
        baseline_step = self.steps()[0]
        for group in self.groups():
            baseline_accesses = {
                e.workload_name: e.memory_accesses
                for e in self._select(baseline_step, group)
            }
            normalized[group] = {}
            for step in self.steps():
                ratios = []
                for entry in self._select(step, group):
                    base = baseline_accesses.get(entry.workload_name)
                    if base:
                        ratios.append(entry.memory_accesses / base)
                if ratios:
                    normalized[group][step] = sum(ratios) / len(ratios)
        return normalized

    # ------------------------------------------------------------------
    def max_speedup(self) -> float:
        """Largest single-workload speedup of ⑥ over ① (paper: up to 2.89×)."""
        final_step = self.steps()[-1]
        baseline_step = self.steps()[0]
        best = 0.0
        baseline = {
            (e.group, e.workload_name): e.kernel_cycles
            for e in self.entries
            if e.step == baseline_step
        }
        for entry in self.entries:
            if entry.step != final_step:
                continue
            base = baseline.get((entry.group, entry.workload_name))
            if base:
                best = max(best, base / entry.kernel_cycles)
        return best

    def max_access_reduction(self) -> float:
        """Largest single-workload access reduction of ⑥ vs ① (paper: 21.15%)."""
        final_step = self.steps()[-1]
        baseline_step = self.steps()[0]
        best = 0.0
        baseline = {
            (e.group, e.workload_name): e.memory_accesses
            for e in self.entries
            if e.step == baseline_step
        }
        for entry in self.entries:
            if entry.step != final_step:
                continue
            base = baseline.get((entry.group, entry.workload_name))
            if base:
                best = max(best, 1.0 - entry.memory_accesses / base)
        return best


class AblationStudy:
    """Runs the ①–⑥ feature ladder over a workload suite.

    All simulation goes through the :class:`~repro.runtime.simulator.Simulator`
    facade, so a study with a cached/parallel simulator is incremental and
    can fan out across worker processes.
    """

    def __init__(
        self,
        design: Optional[AcceleratorSystemDesign] = None,
        steps: Optional[Sequence[str]] = None,
        seed: int = 0,
        simulator: Optional[Simulator] = None,
        engine: str = DEFAULT_ENGINE,
    ) -> None:
        self.design = design or datamaestro_evaluation_system()
        self.simulator = simulator or Simulator()
        self.engine = engine
        all_steps = dict(ABLATION_STEPS)
        if steps is None:
            self.steps: Dict[str, FeatureSet] = dict(ABLATION_STEPS)
        else:
            unknown = [name for name in steps if name not in all_steps]
            if unknown:
                raise ValueError(f"unknown ablation steps: {unknown}")
            self.steps = {name: all_steps[name] for name in steps}
        self.seed = seed

    # ------------------------------------------------------------------
    def job_for(self, workload: Workload, features: FeatureSet) -> SimJob:
        return SimJob(
            workload=workload,
            design=self.design,
            features=features,
            seed=self.seed,
            engine=self.engine,
        )

    def run_workload(self, workload: Workload, features: FeatureSet) -> SimOutcome:
        """Simulate one (workload, feature-set) point through the runtime."""
        return self.simulator.simulate(self.job_for(workload, features))

    def run(
        self,
        suite: Optional[Mapping[WorkloadGroup, Sequence[Workload]]] = None,
        workloads_per_group: Optional[int] = None,
        verify_functional: bool = False,
    ) -> AblationResults:
        """Run the sweep; optionally subsample each group for quick runs."""
        if suite is None:
            suite = synthetic_suite()
        points: List[tuple] = []
        for group, workloads in suite.items():
            selected = list(workloads)
            if workloads_per_group is not None:
                selected = stratified_subset(selected, workloads_per_group)
            for workload in selected:
                for step, features in self.steps.items():
                    points.append((group, workload, step, features))

        outcomes = self.simulator.simulate_many(
            self.job_for(workload, features)
            for _, workload, _, features in points
        )

        results = AblationResults()
        for (group, workload, step, _), outcome in zip(points, outcomes):
            if verify_functional and outcome.functional_match is False:
                raise AssertionError(
                    f"functional mismatch for {workload.name} at step {step}"
                )
            results.entries.append(
                AblationEntry(
                    step=step,
                    group=group,
                    workload_name=workload.name,
                    ideal_cycles=outcome.ideal_compute_cycles,
                    kernel_cycles=outcome.kernel_cycles,
                    utilization=outcome.utilization,
                    memory_accesses=outcome.memory_accesses,
                    bank_conflicts=outcome.bank_conflicts,
                )
            )
        return results
