"""Plain-text report formatting shared by the experiments and examples.

All paper tables/figures are regenerated as aligned ASCII tables so they can
be diffed, logged by the benchmark harness and pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render an aligned ASCII table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(
            str(cell).ljust(widths[index]) for index, cell in enumerate(cells)
        )

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row([str(h) for h in headers]))
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(fmt_row(row))
    return "\n".join(lines)


def format_percentage_map(
    values: Mapping[str, float],
    title: Optional[str] = None,
    reference: Optional[Mapping[str, float]] = None,
) -> str:
    """Render a name → percentage map, optionally next to a paper reference."""
    headers = ["component", "model (%)"]
    if reference is not None:
        headers.append("paper (%)")
    rows = []
    for name, value in values.items():
        row: List[object] = [name, value]
        if reference is not None:
            row.append(reference.get(name, float("nan")))
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_comparison(
    title: str,
    entries: Mapping[str, Mapping[str, float]],
    column_order: Optional[Sequence[str]] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render a nested mapping {row: {column: value}} as a matrix table."""
    if column_order is None:
        columns: List[str] = []
        for row_values in entries.values():
            for column in row_values:
                if column not in columns:
                    columns.append(column)
    else:
        columns = list(column_order)
    headers = [""] + columns
    rows = []
    for row_name, row_values in entries.items():
        rows.append(
            [row_name] + [row_values.get(column, float("nan")) for column in columns]
        )
    return format_table(headers, rows, title=title, float_format=float_format)


def format_check_marks(
    feature_matrix: Mapping[str, Mapping[str, object]],
    feature_order: Sequence[str],
    title: Optional[str] = None,
) -> str:
    """Render a Table-I-style feature comparison with check/cross marks."""
    headers = ["feature"] + list(feature_matrix.keys())
    rows = []
    for feature in feature_order:
        row: List[object] = [feature]
        for solution, features in feature_matrix.items():
            value = features.get(feature)
            if isinstance(value, bool):
                row.append("yes" if value else "no")
            elif value is None:
                row.append("-")
            else:
                row.append(str(value))
        rows.append(row)
    return format_table(headers, rows, title=title)


def indent_block(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())
