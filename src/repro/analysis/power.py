"""Activity-driven power/energy model (paper Fig. 9(c) and §IV-D headline).

Dynamic power is computed from the activity counts the cycle-level simulation
measures (MACs fired, scratchpad words accessed, words streamed, elements
requantized) multiplied by per-event energies, plus a leakage term
proportional to the modelled cell area and a fixed host power; at 1 GHz,
pJ-per-cycle equals mW, which keeps the conversion transparent.

The paper's reference point is an M=N=K=64 GeMM ("GeMM-64") running at 1 GHz;
:func:`gemm64_power_report` reproduces that experiment end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.params import FeatureSet
from ..runtime.job import SimJob
from ..runtime.simulator import Simulator
from ..sim.result import SimulationResult
from ..system.design import AcceleratorSystemDesign, datamaestro_evaluation_system
from ..workloads.spec import GemmWorkload
from .area import AreaModel, SystemAreaBreakdown
from .technology import DEFAULT_ENERGY, EnergyCoefficients


@dataclass
class PowerBreakdown:
    """Average power per component while executing one kernel (mW)."""

    gemm_accelerator: float
    memory_subsystem: float
    datamaestros: float
    quantizer: float
    riscv_host: float
    leakage: float

    @property
    def total(self) -> float:
        return (
            self.gemm_accelerator
            + self.memory_subsystem
            + self.datamaestros
            + self.quantizer
            + self.riscv_host
            + self.leakage
        )

    def shares_percent(self) -> Dict[str, float]:
        total = self.total or 1.0
        return {
            "gemm_accelerator": 100.0 * self.gemm_accelerator / total,
            "memory_subsystem": 100.0 * self.memory_subsystem / total,
            "datamaestros": 100.0 * self.datamaestros / total,
            "quantizer": 100.0 * self.quantizer / total,
            "riscv_host": 100.0 * self.riscv_host / total,
            "leakage": 100.0 * self.leakage / total,
        }


class PowerModel:
    """Converts simulation activity into a component power breakdown."""

    def __init__(
        self,
        design: Optional[AcceleratorSystemDesign] = None,
        coefficients: Optional[EnergyCoefficients] = None,
        area_model: Optional[AreaModel] = None,
    ) -> None:
        self.design = design or datamaestro_evaluation_system()
        self.coeff = coefficients or DEFAULT_ENERGY
        self.area_model = area_model or AreaModel(self.design)

    # ------------------------------------------------------------------
    def breakdown(self, result: SimulationResult) -> PowerBreakdown:
        """Average power while the kernel of ``result`` was executing."""
        cycles = max(result.kernel_cycles, 1)
        frequency = self.design.clock_frequency_ghz
        coeff = self.coeff

        macs_fired = result.counters.get("gemm_mac_cycles", 0) * self.design.num_pes
        gemm_pj = macs_fired * coeff.int8_mac

        memory_pj = result.memory_accesses * coeff.sram_word_access

        words_streamed = 0
        for stats in result.streamer_stats.values():
            words_streamed += stats.requests_granted
        streamer_pj = words_streamed * coeff.streamer_word

        quant_elements = (
            result.counters.get("quantizer_tiles", 0)
            * self.design.gemm_mu
            * self.design.gemm_nu
        )
        quant_pj = quant_elements * coeff.quantizer_element

        area = self.area_model.system_breakdown()
        leakage_mw = area.total * coeff.leakage_per_area

        # pJ per cycle × GHz = mW.
        scale = frequency / cycles
        return PowerBreakdown(
            gemm_accelerator=gemm_pj * scale,
            memory_subsystem=memory_pj * scale,
            datamaestros=streamer_pj * scale,
            quantizer=quant_pj * scale,
            riscv_host=coeff.riscv_host_mw,
            leakage=leakage_mw,
        )

    def energy_efficiency_tops_per_w(self, result: SimulationResult) -> float:
        """System-level TOPS/W for the kernel of ``result``."""
        power = self.breakdown(result)
        throughput_gops = result.throughput_gops(
            num_pes=self.design.num_pes,
            frequency_ghz=self.design.clock_frequency_ghz,
        )
        if power.total <= 0:
            return 0.0
        return throughput_gops / power.total  # GOPS / mW == TOPS / W


def gemm64_power_report(
    design: Optional[AcceleratorSystemDesign] = None,
    area_breakdown: Optional[SystemAreaBreakdown] = None,
    seed: int = 0,
    simulator: Optional[Simulator] = None,
) -> Dict[str, object]:
    """Reproduce the paper's §IV-D reference point: GeMM-64 at 1 GHz.

    Returns the power breakdown, total power and energy efficiency, plus the
    simulation result the numbers were derived from.
    """
    design = design or datamaestro_evaluation_system()
    simulator = simulator or Simulator()
    workload = GemmWorkload(name="gemm64_power_ref", m=64, n=64, k=64, quantize=True)
    outcome = simulator.simulate(
        SimJob(
            workload=workload,
            design=design,
            features=FeatureSet.all_enabled(),
            seed=seed,
            label="gemm64_power_ref",
        )
    )
    result = outcome.result
    area_model = AreaModel(design)
    power_model = PowerModel(design, area_model=area_model)
    breakdown = power_model.breakdown(result)
    return {
        "workload": workload.name,
        "utilization": result.utilization,
        "power_breakdown_mw": breakdown,
        "power_shares_percent": breakdown.shares_percent(),
        "total_power_mw": breakdown.total,
        "energy_efficiency_tops_per_w": power_model.energy_efficiency_tops_per_w(result),
        "simulation": result,
        "area_breakdown": area_breakdown or area_model.system_breakdown(),
    }
