"""Metric helpers: distribution statistics, speedups, throughput normalisation.

The paper reports utilization *distributions* (box plots in Fig. 7(a)),
per-group average speedups, normalized data-access counts and throughput
normalized to a fixed PE count and clock.  This module provides the small
statistical containers those reports are built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence

import numpy as np


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary plus mean, as drawn in a box plot."""

    minimum: float
    first_quartile: float
    median: float
    third_quartile: float
    maximum: float
    mean: float
    count: int

    @staticmethod
    def from_samples(samples: Sequence[float]) -> "BoxStats":
        if not samples:
            raise ValueError("cannot summarise an empty sample set")
        values = np.asarray(list(samples), dtype=np.float64)
        return BoxStats(
            minimum=float(values.min()),
            first_quartile=float(np.percentile(values, 25)),
            median=float(np.percentile(values, 50)),
            third_quartile=float(np.percentile(values, 75)),
            maximum=float(values.max()),
            mean=float(values.mean()),
            count=int(values.size),
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "min": self.minimum,
            "q1": self.first_quartile,
            "median": self.median,
            "q3": self.third_quartile,
            "max": self.maximum,
            "mean": self.mean,
            "count": self.count,
        }


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (used for cross-workload speedup summaries)."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        raise ValueError("cannot take the geometric mean of nothing")
    if np.any(array <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(array))))


def speedup(reference_cycles: float, improved_cycles: float) -> float:
    """Speedup of ``improved`` over ``reference`` (>1 means faster)."""
    if improved_cycles <= 0:
        raise ValueError("cycle counts must be positive")
    return reference_cycles / improved_cycles


def normalized_throughput_gops(
    utilization: float, num_pes: int = 512, frequency_ghz: float = 1.0
) -> float:
    """Figure-10-style normalized throughput: 2·PEs·f·utilization."""
    if not 0.0 <= utilization <= 1.0:
        raise ValueError(f"utilization {utilization} outside [0, 1]")
    if num_pes <= 0 or frequency_ghz <= 0:
        raise ValueError("PE count and frequency must be positive")
    return 2.0 * num_pes * frequency_ghz * utilization


def relative_change(baseline: float, value: float) -> float:
    """Relative change of ``value`` vs ``baseline`` (negative = reduction)."""
    if baseline == 0:
        raise ValueError("baseline must be non-zero")
    return (value - baseline) / baseline


def summarize_by_key(
    samples: Mapping[str, Sequence[float]]
) -> Dict[str, BoxStats]:
    """Box statistics per key (e.g. per workload group)."""
    return {key: BoxStats.from_samples(values) for key, values in samples.items()}


def utilization_gain_ladder(mean_by_step: Mapping[str, float]) -> Dict[str, float]:
    """Per-step multiplicative gain over the previous step (Fig. 7(a) labels)."""
    gains: Dict[str, float] = {}
    previous: float = 0.0
    previous_name = None
    for name, value in mean_by_step.items():
        if previous_name is not None and previous > 0:
            gains[name] = value / previous
        previous, previous_name = value, name
    return gains


def final_over_each_step(mean_by_step: Mapping[str, float]) -> Dict[str, float]:
    """How much the final step improves over every earlier step.

    This matches the annotation style of Fig. 7(a), where each architecture
    is labelled with the factor separating it from the fully-featured ⑥.
    """
    steps = list(mean_by_step.items())
    if not steps:
        return {}
    final = steps[-1][1]
    return {name: (final / value if value > 0 else float("inf")) for name, value in steps}


def average(values: Iterable[float]) -> float:
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        raise ValueError("cannot average an empty sequence")
    return float(array.mean())
