"""Design-space exploration helpers (design-time parameter sweeps).

DataMaestro's defining property is that its data-movement behaviour is set by
*design-time parameters* (Table II) — FIFO depths, channel counts, bank
counts, bank-group options — rather than being hard-wired to one accelerator.
This module provides small sweep drivers that quantify those design choices
on the cycle-level model, in the spirit of the paper's discussion of
design-time configurability:

* :func:`sweep_data_fifo_depth` — how deep the per-channel data FIFOs must be
  before memory latency and bank-conflict jitter are fully hidden (the paper
  uses depth 8 for the A/B streams);
* :func:`sweep_bank_count` — sensitivity of utilization to the number of
  scratchpad banks;
* :func:`sweep_gima_group_size` — effect of the bank-group size used by the
  addressing-mode-switching allocator.

Each sweep returns one record per design point with the measured utilization
and bank conflicts, ready for tabulation by the reporting helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..core.params import FeatureSet, MemoryDesign, StreamerDesign
from ..runtime.job import SimJob
from ..runtime.simulator import Simulator
from ..system.design import AcceleratorSystemDesign, datamaestro_evaluation_system
from ..workloads.spec import GemmWorkload, Workload


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration of a design-time sweep."""

    parameter: str
    value: int
    utilization: float
    kernel_cycles: int
    bank_conflicts: int
    memory_accesses: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "parameter": self.parameter,
            "value": self.value,
            "utilization": self.utilization,
            "kernel_cycles": self.kernel_cycles,
            "bank_conflicts": self.bank_conflicts,
            "memory_accesses": self.memory_accesses,
        }


def default_sweep_workload() -> GemmWorkload:
    """A mid-sized GeMM used as the default sweep kernel."""
    return GemmWorkload(name="dse_gemm", m=64, n=64, k=96)


def _evaluate(
    simulator: Simulator,
    design: AcceleratorSystemDesign,
    workload: Workload,
    parameter: str,
    value: int,
    features: FeatureSet,
    seed: int,
) -> DesignPoint:
    outcome = simulator.simulate(
        SimJob(
            workload=workload,
            design=design,
            features=features,
            seed=seed,
            label=f"{parameter}={value}",
        )
    )
    return DesignPoint(
        parameter=parameter,
        value=value,
        utilization=outcome.utilization,
        kernel_cycles=outcome.kernel_cycles,
        bank_conflicts=outcome.bank_conflicts,
        memory_accesses=outcome.memory_accesses,
    )


def _with_streamer_overrides(
    design: AcceleratorSystemDesign,
    port_names: Sequence[str],
    **overrides: object,
) -> AcceleratorSystemDesign:
    streamers: List[StreamerDesign] = []
    for streamer in design.streamers:
        if streamer.name in port_names:
            streamers.append(replace(streamer, **overrides))
        else:
            streamers.append(streamer)
    return replace(design, streamers=tuple(streamers))


def sweep_data_fifo_depth(
    depths: Sequence[int] = (1, 2, 4, 8, 16),
    workload: Optional[Workload] = None,
    features: Optional[FeatureSet] = None,
    base_design: Optional[AcceleratorSystemDesign] = None,
    seed: int = 0,
    simulator: Optional[Simulator] = None,
) -> List[DesignPoint]:
    """Sweep the data-FIFO depth of the per-cycle operand streams (A and B)."""
    workload = workload or default_sweep_workload()
    features = features or FeatureSet.all_enabled()
    base_design = base_design or datamaestro_evaluation_system()
    simulator = simulator or Simulator()
    points = []
    for depth in depths:
        design = _with_streamer_overrides(
            base_design,
            ("A", "B"),
            data_buffer_depth=int(depth),
            address_buffer_depth=max(int(depth), 2),
        )
        points.append(
            _evaluate(
                simulator, design, workload, "data_fifo_depth", int(depth), features, seed
            )
        )
    return points


def sweep_bank_count(
    bank_counts: Sequence[int] = (32, 64, 128),
    workload: Optional[Workload] = None,
    features: Optional[FeatureSet] = None,
    seed: int = 0,
    simulator: Optional[Simulator] = None,
) -> List[DesignPoint]:
    """Sweep the number of scratchpad banks (at constant total capacity)."""
    workload = workload or default_sweep_workload()
    features = features or FeatureSet.all_enabled()
    simulator = simulator or Simulator()
    points = []
    for banks in bank_counts:
        design = datamaestro_evaluation_system(
            num_banks=int(banks), gima_group_size=max(int(banks) // 4, 1)
        )
        points.append(
            _evaluate(simulator, design, workload, "num_banks", int(banks), features, seed)
        )
    return points


def sweep_gima_group_size(
    group_sizes: Sequence[int] = (8, 16, 32, 64),
    workload: Optional[Workload] = None,
    seed: int = 0,
    simulator: Optional[Simulator] = None,
) -> List[DesignPoint]:
    """Sweep the bank-group size used when addressing-mode switching is on."""
    workload = workload or default_sweep_workload()
    features = FeatureSet.all_enabled()
    simulator = simulator or Simulator()
    points = []
    for group in group_sizes:
        design = datamaestro_evaluation_system(gima_group_size=int(group))
        points.append(
            _evaluate(
                simulator, design, workload, "gima_group_size", int(group), features, seed
            )
        )
    return points


def best_point(points: Sequence[DesignPoint]) -> DesignPoint:
    """The design point with the highest utilization (ties: fewest cycles)."""
    if not points:
        raise ValueError("no design points to choose from")
    return max(points, key=lambda p: (p.utilization, -p.kernel_cycles))
