"""Design-space exploration helpers (design-time parameter sweeps).

DataMaestro's defining property is that its data-movement behaviour is set by
*design-time parameters* (Table II) — FIFO depths, channel counts, bank
counts, bank-group options — rather than being hard-wired to one accelerator.

The three one-dimensional sweep drivers in this module are thin wrappers
over the joint exploration engine in :mod:`repro.explore`: each builds a
single-axis :class:`~repro.explore.space.SearchSpace` and walks it with the
exhaustive grid strategy, so sweeps share the runtime's caching/batching and
compose with the multi-objective engine (``repro explore`` on the CLI runs
the same axes jointly):

* :func:`sweep_data_fifo_depth` — how deep the per-channel data FIFOs must be
  before memory latency and bank-conflict jitter are fully hidden (the paper
  uses depth 8 for the A/B streams);
* :func:`sweep_bank_count` — sensitivity of utilization to the number of
  scratchpad banks;
* :func:`sweep_gima_group_size` — effect of the bank-group size used by the
  addressing-mode-switching allocator.

Each sweep returns one record per design point with the measured utilization
and bank conflicts, ready for tabulation by the reporting helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.params import FeatureSet
from ..explore.engine import ExplorationEngine, default_exploration_workloads
from ..explore.objectives import ObjectiveSpec
from ..explore.space import (
    Candidate,
    SearchSpace,
    bank_count_space,
    datamaestro_builder,
    fifo_depth_space,
    gima_group_space,
)
from ..explore.strategies import GridStrategy
from ..runtime.simulator import Simulator
from ..system.design import AcceleratorSystemDesign
from ..workloads.spec import GemmWorkload, Workload

#: Sweeps optimise the headline paper metric; ties resolved by best_point().
SWEEP_OBJECTIVES = (ObjectiveSpec("utilization", "max"),)


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration of a design-time sweep."""

    parameter: str
    value: int
    utilization: float
    kernel_cycles: int
    bank_conflicts: int
    memory_accesses: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "parameter": self.parameter,
            "value": self.value,
            "utilization": self.utilization,
            "kernel_cycles": self.kernel_cycles,
            "bank_conflicts": self.bank_conflicts,
            "memory_accesses": self.memory_accesses,
        }


def default_sweep_workload() -> GemmWorkload:
    """A mid-sized GeMM used as the default sweep kernel.

    Shared with the exploration engine's default workload suite so that the
    sweeps and ``repro explore`` benchmark the same kernel (and hit the same
    cache entries).
    """
    return default_exploration_workloads()[0]


def run_axis_sweep(
    space: SearchSpace,
    parameter: str,
    workload: Optional[Workload] = None,
    seed: int = 0,
    simulator: Optional[Simulator] = None,
) -> List[DesignPoint]:
    """Walk a single-axis space exhaustively and flatten to design points.

    Unlike the joint exploration engine — which *filters* invalid candidates
    out of the space — a sweep over explicitly listed values treats an
    illegal value as a caller error and raises.
    """
    workload = workload or default_sweep_workload()
    for value in space.axis(parameter).values:
        candidate = Candidate.from_dict({parameter: value})
        for constraint in space.constraints:
            if not constraint.holds(candidate.as_dict()):
                raise ValueError(
                    f"{parameter}={value} violates constraint {constraint.name!r}"
                )
        # Surface the design model's own ValueError for illegal values.
        space.build(candidate)
    engine = ExplorationEngine(
        space=space,
        strategy=GridStrategy(),
        objectives=SWEEP_OBJECTIVES,
        workloads=[workload],
        simulator=simulator,
        sim_seed=seed,
    )
    report = engine.run(budget=len(space.axis(parameter).values))
    return [
        DesignPoint(
            parameter=parameter,
            value=int(evaluation.candidate[parameter]),
            utilization=evaluation.metrics["utilization"],
            kernel_cycles=int(evaluation.metrics["cycles"]),
            bank_conflicts=int(evaluation.metrics["bank_conflicts"]),
            memory_accesses=int(evaluation.metrics["memory_accesses"]),
        )
        for evaluation in report.evaluations
    ]


def sweep_data_fifo_depth(
    depths: Sequence[int] = (1, 2, 4, 8, 16),
    workload: Optional[Workload] = None,
    features: Optional[FeatureSet] = None,
    base_design: Optional[AcceleratorSystemDesign] = None,
    seed: int = 0,
    simulator: Optional[Simulator] = None,
) -> List[DesignPoint]:
    """Sweep the data-FIFO depth of the per-cycle operand streams (A and B)."""
    space = fifo_depth_space(depths)
    space.builder = datamaestro_builder(
        base_design=base_design, base_features=features, fifo_ports=("A", "B")
    )
    return run_axis_sweep(
        space, "data_fifo_depth", workload=workload, seed=seed, simulator=simulator
    )


def sweep_bank_count(
    bank_counts: Sequence[int] = (32, 64, 128),
    workload: Optional[Workload] = None,
    features: Optional[FeatureSet] = None,
    seed: int = 0,
    simulator: Optional[Simulator] = None,
) -> List[DesignPoint]:
    """Sweep the number of scratchpad banks (at constant total capacity)."""
    space = bank_count_space(bank_counts)
    space.builder = datamaestro_builder(base_features=features)
    return run_axis_sweep(
        space, "num_banks", workload=workload, seed=seed, simulator=simulator
    )


def sweep_gima_group_size(
    group_sizes: Sequence[int] = (8, 16, 32, 64),
    workload: Optional[Workload] = None,
    seed: int = 0,
    simulator: Optional[Simulator] = None,
) -> List[DesignPoint]:
    """Sweep the bank-group size used when addressing-mode switching is on."""
    return run_axis_sweep(
        gima_group_space(group_sizes),
        "gima_group_size",
        workload=workload,
        seed=seed,
        simulator=simulator,
    )


def best_point(points: Sequence[DesignPoint]) -> DesignPoint:
    """The design point with the highest utilization.

    Tie-breaking is deterministic and independent of input order: equal
    utilization resolves to the fewest kernel cycles, then the fewest bank
    conflicts, then the smallest parameter value (the cheaper design).
    """
    if not points:
        raise ValueError("no design points to choose from")
    return max(
        points,
        key=lambda p: (p.utilization, -p.kernel_cycles, -p.bank_conflicts, -p.value),
    )
