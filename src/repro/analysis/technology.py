"""Technology constants for the first-order area / energy / FPGA models.

The paper reports silicon results (GlobalFoundries 22FDX, 1 GHz, 0.8 V) and
an AMD VPK180 FPGA prototype.  A pure-Python reproduction cannot run
synthesis, so Figures 8–10 are reproduced with a component-level parametric
model in the spirit of Accelergy: every hardware structure is assigned a
per-unit cost (per SRAM bit, per FIFO register bit, per int8 MAC, ...), the
structures are enumerated from the same design-time parameters the simulator
uses, and dynamic energy is driven by the activity counts the cycle model
measures.

The constants below are calibrated so the *shares* of the evaluation system's
breakdown land near the paper's reported percentages; the absolute values are
representative 22nm-class numbers, not signed-off silicon data.  They are
deliberately centralised here so a user can re-calibrate them for another
technology without touching the models.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AreaCoefficients:
    """Cell-area cost per structural unit (arbitrary units ≈ µm² in 22nm)."""

    #: One bit of SRAM macro, including bank periphery and the crossbar share.
    sram_bit: float = 0.26
    #: One bit of a flip-flop-based FIFO (storage + full/empty + mux).
    fifo_bit: float = 2.4
    #: One bit of an ordinary pipeline/config register.
    register_bit: float = 1.6
    #: One 32-bit adder (AGU stride counters, adder tree).
    adder_32: float = 95.0
    #: One int8×int8 MAC with int32 accumulation (GeMM PE).
    int8_mac: float = 190.0
    #: One quantizer lane (int32 multiply, shift-round, clamp).
    quantizer_lane: float = 3400.0
    #: Per-channel control of a Memory Interface Controller.
    mic_per_channel: float = 18.0
    #: Address remapper: per supported addressing-mode option per channel.
    remapper_per_option_per_channel: float = 2.0
    #: Transposer datapath per byte of the wide word.
    transposer_per_byte: float = 3.5
    #: Broadcaster datapath per byte of the wide word.
    broadcaster_per_byte: float = 0.9
    #: Fixed area of the RISC-V host (core + instruction/data caches + uncore).
    riscv_host: float = 155_000.0
    #: Crossbar switching area per requester-channel per bank-width bit.
    crossbar_per_channel_bit: float = 0.55
    #: Address width assumed for address FIFO entries (bits).
    address_bits: int = 17


@dataclass(frozen=True)
class EnergyCoefficients:
    """Dynamic energy per event (pJ) and static power shares.

    With a 1 GHz clock, ``pJ per cycle`` equals ``mW``, which is how the
    power model converts activity into the Figure 9(c) breakdown.
    """

    #: One 64-bit scratchpad word access (bank + crossbar traversal).
    sram_word_access: float = 3.4
    #: One int8 MAC operation (including its share of operand distribution).
    int8_mac: float = 0.155
    #: One 64-bit word moving through a DataMaestro channel
    #: (FIFO write + read + AGU/MIC control).
    streamer_word: float = 2.3
    #: One output element re-quantized (multiply + shift + clamp).
    quantizer_element: float = 1.4
    #: Average power of the RISC-V host while orchestrating a kernel (mW).
    riscv_host_mw: float = 106.0
    #: Static (leakage) power per unit of modelled cell area (mW per area unit).
    leakage_per_area: float = 2.6e-5


@dataclass(frozen=True)
class FpgaCoefficients:
    """FPGA resource cost per structural unit (AMD Versal-class LUT/FF)."""

    luts_per_mac: float = 230.0
    regs_per_mac: float = 15.0
    luts_per_fifo_bit: float = 0.45
    regs_per_fifo_bit: float = 0.7
    luts_per_agu_dim: float = 110.0
    regs_per_agu_dim: float = 70.0
    luts_per_channel: float = 95.0
    regs_per_channel: float = 40.0
    luts_per_quantizer_lane: float = 900.0
    regs_per_quantizer_lane: float = 260.0
    luts_host_and_interconnect: float = 118_000.0
    regs_host_and_interconnect: float = 40_000.0
    #: The scratchpad maps to BRAM/URAM, adding only glue LUTs per bank.
    luts_per_bank: float = 60.0
    regs_per_bank: float = 25.0


DEFAULT_AREA = AreaCoefficients()
DEFAULT_ENERGY = EnergyCoefficients()
DEFAULT_FPGA = FpgaCoefficients()

#: Headline silicon figures reported by the paper (§IV-D), used by the
#: experiment reports to print "paper vs model" side by side.
PAPER_SILICON_REFERENCE = {
    "total_cell_area_mm2": 0.61,
    "total_power_mw": 329.4,
    "energy_efficiency_tops_per_w": 2.57,
    "area_share_percent": {
        "memory_subsystem": 44.90,
        "riscv_host": 25.49,
        "gemm_accelerator": 18.45,
        "quantizer": 4.73,
        "datamaestros": 6.43,
    },
    "power_share_percent": {
        "memory_subsystem": 21.59,
        "riscv_host": 33.01,
        "gemm_accelerator": 24.17,
        "quantizer": 6.16,
        "datamaestros": 15.06,
    },
    "datamaestro_a_share_percent": {
        "data_fifos": 86.71,
        "agu": 10.00,
        "transposer": 1.75,
        "mic": 1.04,
        "address_remapper": 0.49,
    },
}

#: FPGA prototype figures reported by the paper (Fig. 8).
PAPER_FPGA_REFERENCE = {
    "platform": "VPK180",
    "clock_mhz": 125,
    "luts_total": 265_000,
    "regs_total": 59_000,
    "luts_gemm": 124_000,
    "regs_gemm": 8_000,
    "luts_datamaestros": 14_000,
    "regs_datamaestros": 4_400,
}
