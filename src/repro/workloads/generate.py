"""Seeded generative workload sampler: random *legal* kernels + a shrinker.

The hand-written suites (:mod:`repro.workloads.synthetic`, the network layer
tables) cover the paper's evaluation grid, but property-based testing needs
the opposite: arbitrary shapes nobody thought of.  :class:`WorkloadGenerator`
materialises random workloads that are always *legal* — they satisfy the spec
validators, fit the 128 KiB scratchpad of the evaluation system, and stay
small enough that a pure-Python cycle simulation finishes in milliseconds —
via constraint-aware rejection sampling.

Beyond the classic conv/GeMM shapes the generator knows the transformer-era
families ROADMAP asks for:

``gemm`` / ``transposed_gemm`` / ``conv``
    uniform draws over the tractable shape box (dimension mix per family);
``prefill``
    the long-sequence half of LLM serving: GeMMs with M ≫ N (many tokens
    through a narrow projection slice);
``decode``
    the autoregressive half: M ∈ {1..4} token GeMMs, the skinny-matrix
    corner the streamers' padding logic must get right;
``ragged_gemm``
    a *bundle* of grouped GeMMs sharing (N, K) with ragged per-group M —
    variable-length batch members through one projection;
``moe``
    a *bundle* of per-expert GeMMs whose token counts follow a Zipf-skewed
    dispatch — a few hot experts, a long tail of nearly idle ones.

Failing cases found by fuzzing are minimised with :func:`shrink`, a greedy
descent over per-field reduction moves that preserves legality at every step,
and :func:`regression_snippet` renders the survivor as a ready-to-paste
pytest function.

Determinism contract: one ``WorkloadGenerator(seed)`` instance replays the
identical draw sequence on every platform (it uses :mod:`random`'s portable
Mersenne Twister, never the process-global RNG).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .spec import ConvWorkload, GemmWorkload, Workload

__all__ = [
    "FAMILIES",
    "BUNDLE_FAMILIES",
    "GeneratedCase",
    "WorkloadGenerator",
    "regression_snippet",
    "shrink",
    "workload_fits",
    "zipf_weights",
]

#: Every family :meth:`WorkloadGenerator.draw_case` can sample.
FAMILIES = (
    "gemm",
    "transposed_gemm",
    "conv",
    "prefill",
    "decode",
    "ragged_gemm",
    "moe",
)

#: Families whose cases are bundles (several GeMMs submitted together).
BUNDLE_FAMILIES = ("ragged_gemm", "moe")

#: Scratchpad budget (bytes) every generated kernel must fit — mirrors the
#: synthetic suite's model of the 128 KiB evaluation-system scratchpad with
#: headroom for the feature-disabled expanded-init configurations.
_SCRATCHPAD_BUDGET_BYTES = 120 * 1024

#: Rejection-sampling attempts before the generator gives up.  The shape
#: boxes below make rejections rare; hitting this means the limits were
#: reconfigured into an infeasible region, which should be loud.
_MAX_ATTEMPTS = 200


def _gemm_fits(m: int, n: int, k: int) -> bool:
    """Scratchpad-fit model for GeMM (same footprint as the synthetic suite)."""
    footprint = m * k + k * n + 8 * m * n + 4 * n
    return footprint <= _SCRATCHPAD_BUDGET_BYTES


def _conv_fits(height, width, cin, cout, kh, kw, stride) -> bool:
    out_h = (height - kh) // stride + 1
    out_w = (width - kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        return False
    tiles_m = out_h * -(-out_w // 8)
    tiles_n = -(-cout // 8)
    footprint = (
        height * (width + 8) * max(cin, 8)
        + kh * kw * max(cin, 8) * max(cout, 8)
        + 2 * tiles_m * tiles_n * 256
    )
    return footprint <= _SCRATCHPAD_BUDGET_BYTES


def workload_fits(workload: Workload) -> bool:
    """True when ``workload`` fits the generator's scratchpad model."""
    if isinstance(workload, GemmWorkload):
        return _gemm_fits(workload.m, workload.n, workload.k)
    return _conv_fits(
        workload.in_height,
        workload.in_width,
        workload.in_channels,
        workload.out_channels,
        workload.kernel_h,
        workload.kernel_w,
        workload.stride,
    )


def zipf_weights(count: int, exponent: float = 1.2) -> List[float]:
    """Normalised Zipf weights ``1/rank^exponent`` for ``count`` ranks."""
    if count <= 0:
        raise ValueError("count must be positive")
    raw = [1.0 / (rank ** exponent) for rank in range(1, count + 1)]
    total = sum(raw)
    return [weight / total for weight in raw]


@dataclass(frozen=True)
class GeneratedCase:
    """One sampled scenario: a family tag plus its workload bundle.

    Scalar families carry exactly one workload; the bundle families
    (``ragged_gemm``, ``moe``) carry one GeMM per group/expert.
    """

    family: str
    seed: int
    workloads: Tuple[Workload, ...]

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(f"unknown family {self.family!r}")
        if not self.workloads:
            raise ValueError("a generated case needs at least one workload")


class WorkloadGenerator:
    """Seeded sampler of random legal workloads across the scenario families.

    Parameters
    ----------
    seed:
        Deterministic replay seed; two generators with the same seed and
        limits produce identical sequences.
    families:
        Subset of :data:`FAMILIES` to sample from (default: all).
    max_gemm_m / max_gemm_n / max_gemm_k:
        Upper bounds of the GeMM shape box.  The defaults keep one
        simulation in the low-millisecond range so a fuzz run of dozens of
        cases × three engine configurations stays CI-friendly.
    max_conv_fmap / max_conv_channels:
        Upper bounds of the convolution feature-map edge and channel counts.
    """

    def __init__(
        self,
        seed: int = 0,
        families: Optional[Sequence[str]] = None,
        max_gemm_m: int = 32,
        max_gemm_n: int = 32,
        max_gemm_k: int = 48,
        max_conv_fmap: int = 12,
        max_conv_channels: int = 16,
    ) -> None:
        chosen = tuple(families) if families is not None else FAMILIES
        unknown = [f for f in chosen if f not in FAMILIES]
        if unknown:
            raise ValueError(f"unknown families: {unknown!r}")
        if not chosen:
            raise ValueError("families must not be empty")
        if min(max_gemm_m, max_gemm_n, max_gemm_k) < 4:
            raise ValueError("GeMM limits must be at least 4")
        if max_conv_fmap < 3 or max_conv_channels < 1:
            raise ValueError("convolution limits too small to sample legally")
        self.seed = seed
        self.families = chosen
        self.max_gemm_m = max_gemm_m
        self.max_gemm_n = max_gemm_n
        self.max_gemm_k = max_gemm_k
        self.max_conv_fmap = max_conv_fmap
        self.max_conv_channels = max_conv_channels
        self._rng = random.Random(seed)
        self._case_index = 0
        self._samplers: Dict[str, Callable[[str], Tuple[Workload, ...]]] = {
            "gemm": self._sample_gemm,
            "transposed_gemm": self._sample_transposed_gemm,
            "conv": self._sample_conv,
            "prefill": self._sample_prefill,
            "decode": self._sample_decode,
            "ragged_gemm": self._sample_ragged,
            "moe": self._sample_moe,
        }

    # ------------------------------------------------------------------
    # Public draws.
    # ------------------------------------------------------------------
    def draw_case(self, family: Optional[str] = None) -> GeneratedCase:
        """Sample one scenario (family chosen uniformly unless given)."""
        if family is None:
            family = self._rng.choice(self.families)
        elif family not in FAMILIES:
            raise ValueError(f"unknown family {family!r}")
        index = self._case_index
        self._case_index += 1
        tag = f"fuzz_{self.seed}_{index}_{family}"
        workloads = self._samplers[family](tag)
        return GeneratedCase(family=family, seed=self.seed, workloads=workloads)

    def draw(self, family: Optional[str] = None) -> Workload:
        """Sample one workload (bundle families yield their first member)."""
        return self.draw_case(family).workloads[0]

    def draw_many(self, count: int, family: Optional[str] = None) -> List[GeneratedCase]:
        """Sample ``count`` independent cases."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.draw_case(family) for _ in range(count)]

    def workload_pool(self, size: int) -> List[Workload]:
        """``size`` distinct scalar workloads — the replay harness's key space."""
        if size <= 0:
            raise ValueError("size must be positive")
        scalar = [f for f in self.families if f not in BUNDLE_FAMILIES] or ["gemm"]
        pool: List[Workload] = []
        seen = set()
        attempts = 0
        while len(pool) < size:
            attempts += 1
            if attempts > _MAX_ATTEMPTS * size:
                raise RuntimeError("could not sample enough distinct workloads")
            workload = self.draw(self._rng.choice(scalar))
            shape_key = replace(workload, name="pool")
            if shape_key in seen:
                continue
            seen.add(shape_key)
            pool.append(workload)
        return pool

    # ------------------------------------------------------------------
    # Family samplers.  Every sampler rejection-loops against the fit model
    # so each returned workload is legal by construction.
    # ------------------------------------------------------------------
    def _reject(self, build: Callable[[], Workload]) -> Workload:
        for _ in range(_MAX_ATTEMPTS):
            try:
                workload = build()
            except ValueError:
                continue
            if workload_fits(workload):
                return workload
        raise RuntimeError(
            "rejection sampling failed; the configured shape limits leave "
            "no legal workloads"
        )

    def _gemm_flags(self) -> Dict[str, bool]:
        return {
            "with_bias": self._rng.random() < 0.8,
            "quantize": self._rng.random() < 0.25,
        }

    def _sample_gemm(self, tag: str) -> Tuple[Workload, ...]:
        rng = self._rng

        def build():
            return GemmWorkload(
                name=tag,
                m=rng.randint(1, self.max_gemm_m),
                n=rng.randint(1, self.max_gemm_n),
                k=rng.randint(1, self.max_gemm_k),
                **self._gemm_flags(),
            )

        return (self._reject(build),)

    def _sample_transposed_gemm(self, tag: str) -> Tuple[Workload, ...]:
        rng = self._rng

        def build():
            return GemmWorkload(
                name=tag,
                m=rng.randint(1, self.max_gemm_m),
                n=rng.randint(1, self.max_gemm_n),
                k=rng.randint(1, self.max_gemm_k),
                transposed_a=True,
                **self._gemm_flags(),
            )

        return (self._reject(build),)

    def _sample_conv(self, tag: str) -> Tuple[Workload, ...]:
        rng = self._rng

        def build():
            kernel = rng.choice((1, 3, 5))
            fmap_low = max(3, kernel)
            return ConvWorkload(
                name=tag,
                in_height=rng.randint(fmap_low, self.max_conv_fmap),
                in_width=rng.randint(fmap_low, self.max_conv_fmap),
                in_channels=rng.randint(1, self.max_conv_channels),
                out_channels=rng.randint(1, self.max_conv_channels),
                kernel_h=kernel,
                kernel_w=kernel,
                stride=rng.choice((1, 1, 2)),
                with_bias=rng.random() < 0.8,
                quantize=rng.random() < 0.25,
            )

        return (self._reject(build),)

    def _sample_prefill(self, tag: str) -> Tuple[Workload, ...]:
        """Long-sequence projection: M ≫ N, the streaming-heavy corner."""
        rng = self._rng

        def build():
            m = rng.randint(max(4, self.max_gemm_m // 2), self.max_gemm_m)
            n = rng.randint(1, max(1, self.max_gemm_n // 4))
            return GemmWorkload(
                name=tag,
                m=m,
                n=n,
                k=rng.randint(4, self.max_gemm_k),
                **self._gemm_flags(),
            )

        return (self._reject(build),)

    def _sample_decode(self, tag: str) -> Tuple[Workload, ...]:
        """Autoregressive step: 1–4 tokens through a full projection."""
        rng = self._rng

        def build():
            return GemmWorkload(
                name=tag,
                m=rng.randint(1, 4),
                n=rng.randint(4, self.max_gemm_n),
                k=rng.randint(4, self.max_gemm_k),
                **self._gemm_flags(),
            )

        return (self._reject(build),)

    def _sample_ragged(self, tag: str) -> Tuple[Workload, ...]:
        """Grouped GeMMs sharing (N, K) with ragged per-group M."""
        rng = self._rng
        groups = rng.randint(2, 4)
        n = rng.randint(4, self.max_gemm_n)
        k = rng.randint(4, self.max_gemm_k)
        flags = self._gemm_flags()
        bundle = []
        for index in range(groups):
            def build(index=index):
                return GemmWorkload(
                    name=f"{tag}_g{index}",
                    m=rng.randint(1, self.max_gemm_m),
                    n=n,
                    k=k,
                    **flags,
                )

            bundle.append(self._reject(build))
        return tuple(bundle)

    def _sample_moe(self, tag: str) -> Tuple[Workload, ...]:
        """MoE dispatch: per-expert GeMMs with Zipf-skewed token counts."""
        rng = self._rng
        experts = rng.randint(2, 4)
        tokens = rng.randint(experts, self.max_gemm_m)
        n = rng.randint(4, self.max_gemm_n)
        k = rng.randint(4, self.max_gemm_k)
        flags = self._gemm_flags()
        weights = zipf_weights(experts)
        # Deterministic largest-remainder split of the token budget so every
        # expert keeps at least one token (empty experts are not dispatched).
        counts = [max(1, int(tokens * weight)) for weight in weights]
        bundle = []
        for index, count in enumerate(counts):
            def build(index=index, count=count):
                return GemmWorkload(
                    name=f"{tag}_e{index}",
                    m=min(count, self.max_gemm_m),
                    n=n,
                    k=k,
                    **flags,
                )

            bundle.append(self._reject(build))
        return tuple(bundle)


# ----------------------------------------------------------------------
# Shrinking: greedy descent to the smallest still-failing workload.
# ----------------------------------------------------------------------
#: Integer fields the shrinker reduces, per workload kind.
_GEMM_DIMS = ("m", "n", "k")
_CONV_DIMS = (
    "in_height",
    "in_width",
    "in_channels",
    "out_channels",
    "kernel_h",
    "kernel_w",
    "stride",
    "padding",
)
#: Flag fields the shrinker tries to switch off (False is "smaller").
_FLAGS = ("transposed_a", "quantize", "with_bias")


def _candidate_values(value: int, floor: int) -> List[int]:
    """Reduction ladder for one integer field: big halving jumps first,
    then the decrement, so shrinking is O(log value) when jumps succeed."""
    candidates = []
    for smaller in (floor, value // 2, value - 1):
        if floor <= smaller < value and smaller not in candidates:
            candidates.append(smaller)
    return candidates


def _shrink_moves(workload: Workload) -> List[Workload]:
    """Legal single-field reductions of ``workload``, biggest jumps first."""
    if isinstance(workload, GemmWorkload):
        dims, floors = _GEMM_DIMS, {"m": 1, "n": 1, "k": 1}
    else:
        dims = _CONV_DIMS
        floors = {name: 1 for name in _CONV_DIMS}
        floors["padding"] = 0
    moves: List[Workload] = []
    for dim in dims:
        value = getattr(workload, dim)
        for smaller in _candidate_values(value, floors[dim]):
            try:
                moves.append(replace(workload, **{dim: smaller}))
            except ValueError:
                continue
    for flag in _FLAGS:
        if getattr(workload, flag, False):
            moves.append(replace(workload, **{flag: False}))
    return moves


def shrink(
    workload: Workload,
    predicate: Callable[[Workload], bool],
    max_steps: int = 1000,
) -> Workload:
    """Greedy minimisation: repeatedly apply the first reduction move that
    keeps ``predicate`` true (i.e. still failing), until no move does.

    ``predicate`` must be true for ``workload`` itself — shrinking a passing
    case is a caller bug and raises ``ValueError``.  The result is *1-minimal*
    under the move set: no single halving/decrement/flag-drop reproduces.
    """
    if not predicate(workload):
        raise ValueError("shrink() needs a failing workload to start from")
    current = workload
    for _ in range(max_steps):
        for move in _shrink_moves(current):
            if predicate(move):
                current = move
                break
        else:
            return current
    return current


def regression_snippet(workload: Workload, seed: int = 0) -> str:
    """Render a shrunken counterexample as a ready-to-paste pytest function.

    The emitted test calls the parity helper from
    ``tests/engine/test_parity.py`` so a paste into that file (or any module
    importing ``assert_parity``) reproduces the failure standalone.
    """
    kind = type(workload).__name__
    fields = [f"name={workload.name!r}"]
    if isinstance(workload, GemmWorkload):
        fields += [f"m={workload.m}", f"n={workload.n}", f"k={workload.k}"]
        if workload.transposed_a:
            fields.append("transposed_a=True")
    else:
        fields += [
            f"in_height={workload.in_height}",
            f"in_width={workload.in_width}",
            f"in_channels={workload.in_channels}",
            f"out_channels={workload.out_channels}",
            f"kernel_h={workload.kernel_h}",
            f"kernel_w={workload.kernel_w}",
            f"stride={workload.stride}",
        ]
        if workload.padding:
            fields.append(f"padding={workload.padding}")
    if not workload.with_bias:
        fields.append("with_bias=False")
    if workload.quantize:
        fields.append("quantize=True")
    arglist = ",\n        ".join(fields)
    return (
        f"def test_regression_{workload.name}():\n"
        f"    # Shrunken fuzz counterexample (REPRO_FUZZ_SEED={seed}).\n"
        f"    workload = {kind}(\n"
        f"        {arglist},\n"
        f"    )\n"
        f"    assert_parity(workload, seed={seed})\n"
    )
