"""Workload specifications: GeMM, transposed GeMM and convolution kernels.

These are the three workload groups of the paper's ablation study (§IV-B):
general matrix-matrix multiplication, GeMM with a transposed left operand
(pervasive in attention layers), and 2-D convolution.  A workload spec is a
purely logical description — sizes, stride, whether a bias/init tensor is
consumed and whether the output is re-quantized — and is consumed by the
compiler (:mod:`repro.compiler`) which lowers it onto the evaluation system.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Tuple, Union

from ..utils.packing import ceil_div


class WorkloadGroup(enum.Enum):
    """The three workload categories used throughout the evaluation."""

    GEMM = "gemm"
    TRANSPOSED_GEMM = "transposed_gemm"
    CONVOLUTION = "convolution"


@dataclass(frozen=True)
class GemmWorkload:
    """A dense ``C[M, N] (+)= A[M, K] @ B[K, N]`` kernel.

    ``transposed_a`` marks that the left operand is stored K-major (i.e. the
    memory holds ``A^T``), the situation the Transposer extension targets.
    """

    name: str
    m: int
    n: int
    k: int
    transposed_a: bool = False
    with_bias: bool = True
    quantize: bool = False

    def __post_init__(self) -> None:
        if self.m <= 0 or self.n <= 0 or self.k <= 0:
            raise ValueError(f"{self.name}: GeMM dimensions must be positive")

    # ------------------------------------------------------------------
    @property
    def group(self) -> WorkloadGroup:
        if self.transposed_a:
            return WorkloadGroup.TRANSPOSED_GEMM
        return WorkloadGroup.GEMM

    @property
    def macs(self) -> int:
        return self.m * self.n * self.k

    def tile_counts(self, mu: int, nu: int, ku: int) -> Tuple[int, int, int]:
        """(tiles_m, tiles_n, tiles_k) when mapped on an Mu×Nu×Ku array."""
        return (ceil_div(self.m, mu), ceil_div(self.n, nu), ceil_div(self.k, ku))

    def ideal_compute_cycles(self, mu: int, nu: int, ku: int) -> int:
        tiles_m, tiles_n, tiles_k = self.tile_counts(mu, nu, ku)
        return tiles_m * tiles_n * tiles_k

    def padded_shape(self, mu: int, nu: int, ku: int) -> Tuple[int, int, int]:
        tiles_m, tiles_n, tiles_k = self.tile_counts(mu, nu, ku)
        return (tiles_m * mu, tiles_n * nu, tiles_k * ku)

    def scaled(self, name: str, **changes: object) -> "GemmWorkload":
        """Copy with modified fields (used to build representative crops)."""
        return replace(self, name=name, **changes)


@dataclass(frozen=True)
class ConvWorkload:
    """A 2-D convolution ``O[X, Y, K] = Σ I[sX+fx, sY+fy, C] · W[fx, fy, C, K]``."""

    name: str
    in_height: int
    in_width: int
    in_channels: int
    out_channels: int
    kernel_h: int = 3
    kernel_w: int = 3
    stride: int = 1
    padding: int = 0
    with_bias: bool = True
    quantize: bool = False

    def __post_init__(self) -> None:
        if min(self.in_height, self.in_width, self.in_channels, self.out_channels) <= 0:
            raise ValueError(f"{self.name}: convolution dimensions must be positive")
        if self.kernel_h <= 0 or self.kernel_w <= 0:
            raise ValueError(f"{self.name}: kernel dimensions must be positive")
        if self.stride <= 0:
            raise ValueError(f"{self.name}: stride must be positive")
        if self.padding < 0:
            raise ValueError(f"{self.name}: padding must be non-negative")
        if self.out_height <= 0 or self.out_width <= 0:
            raise ValueError(f"{self.name}: output feature map would be empty")

    # ------------------------------------------------------------------
    @property
    def group(self) -> WorkloadGroup:
        return WorkloadGroup.CONVOLUTION

    @property
    def out_height(self) -> int:
        return (self.in_height + 2 * self.padding - self.kernel_h) // self.stride + 1

    @property
    def out_width(self) -> int:
        return (self.in_width + 2 * self.padding - self.kernel_w) // self.stride + 1

    @property
    def output_pixels(self) -> int:
        return self.out_height * self.out_width

    @property
    def macs(self) -> int:
        return (
            self.output_pixels
            * self.out_channels
            * self.in_channels
            * self.kernel_h
            * self.kernel_w
        )

    @property
    def is_strided(self) -> bool:
        return self.stride > 1

    @property
    def is_pointwise(self) -> bool:
        return self.kernel_h == 1 and self.kernel_w == 1

    def as_gemm_dims(self, mu: int, nu: int, ku: int) -> Tuple[int, int, int]:
        """The implicit-GeMM view: M = output pixels, N = out channels,
        K = kernel positions × input channels (rounded to the PE tiling)."""
        tiles_m = ceil_div(self.output_pixels, mu)
        tiles_n = ceil_div(self.out_channels, nu)
        tiles_k = self.kernel_h * self.kernel_w * ceil_div(self.in_channels, ku)
        return (tiles_m, tiles_n, tiles_k)

    def ideal_compute_cycles(self, mu: int, nu: int, ku: int) -> int:
        tiles_m, tiles_n, tiles_k = self.as_gemm_dims(mu, nu, ku)
        return tiles_m * tiles_n * tiles_k

    def im2col_matrix_shape(self) -> Tuple[int, int]:
        """Shape of the explicit im2col matrix (rows, cols)."""
        return (
            self.output_pixels,
            self.kernel_h * self.kernel_w * self.in_channels,
        )

    def scaled(self, name: str, **changes: object) -> "ConvWorkload":
        return replace(self, name=name, **changes)


Workload = Union[GemmWorkload, ConvWorkload]


def workload_group(workload: Workload) -> WorkloadGroup:
    """Return the workload's group (GeMM / transposed GeMM / convolution)."""
    return workload.group


def is_convolution(workload: Workload) -> bool:
    return isinstance(workload, ConvWorkload)


def is_gemm(workload: Workload) -> bool:
    return isinstance(workload, GemmWorkload)
