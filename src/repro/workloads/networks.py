"""Layer tables of the real-world DNNs benchmarked in the paper (Table III).

The paper benchmarks ResNet-18 and VGG-16 (CNNs) plus ViT-Base/16 and
BERT-Base (Transformers) on the FPGA prototype and reports the GeMM-core
utilization of each network.  This module provides the standard layer shapes
of those four networks as :class:`~repro.workloads.spec.Workload` lists with
repetition counts, so the network-level performance estimator
(:mod:`repro.analysis.network_perf`) can weight every layer by its share of
the network's compute.

Shapes follow the original publications: ResNet-18 / VGG-16 for 224×224
ImageNet inference, ViT-B/16 with 196+1 tokens, BERT-Base with a sequence
length of 128.  All layers are expressed for batch size 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .spec import ConvWorkload, GemmWorkload, Workload


@dataclass(frozen=True)
class NetworkLayer:
    """One (possibly repeated) layer of a network."""

    workload: Workload
    count: int = 1

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("layer repetition count must be positive")

    @property
    def total_macs(self) -> int:
        return self.workload.macs * self.count


@dataclass(frozen=True)
class NetworkModel:
    """A named network: an ordered list of layers with repetition counts."""

    name: str
    kind: str  # "CNN" or "Transformer"
    layers: Tuple[NetworkLayer, ...]

    @property
    def total_macs(self) -> int:
        return sum(layer.total_macs for layer in self.layers)

    def unique_workloads(self) -> List[Workload]:
        """Layer workloads with repeats removed, first-occurrence order.

        Repeated stages (stacked residual blocks, per-layer transformer
        sub-blocks) share one workload spec; deduplicating here keeps the
        parity/perf suites from simulating identical kernels repeatedly.
        """
        unique: List[Workload] = []
        seen = set()
        for layer in self.layers:
            if layer.workload not in seen:
                seen.add(layer.workload)
                unique.append(layer.workload)
        return unique


def _conv(
    name: str,
    hw: int,
    cin: int,
    cout: int,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
) -> ConvWorkload:
    return ConvWorkload(
        name=name,
        in_height=hw,
        in_width=hw,
        in_channels=cin,
        out_channels=cout,
        kernel_h=kernel,
        kernel_w=kernel,
        stride=stride,
        padding=padding,
    )


def _gemm(name: str, m: int, n: int, k: int, transposed: bool = False) -> GemmWorkload:
    return GemmWorkload(name=name, m=m, n=n, k=k, transposed_a=transposed)


# ----------------------------------------------------------------------
# ResNet-18 (He et al., 224x224 input).
# ----------------------------------------------------------------------
def resnet18() -> NetworkModel:
    layers = [
        NetworkLayer(_conv("rn18_conv1", 224, 3, 64, 7, stride=2, padding=3)),
        # Stage 1: 56x56, 64 channels.
        NetworkLayer(_conv("rn18_s1_conv3x3", 56, 64, 64, 3, padding=1), count=4),
        # Stage 2: downsample to 28x28, 128 channels.
        NetworkLayer(_conv("rn18_s2_down3x3", 56, 64, 128, 3, stride=2, padding=1)),
        NetworkLayer(_conv("rn18_s2_skip1x1", 56, 64, 128, 1, stride=2)),
        NetworkLayer(_conv("rn18_s2_conv3x3", 28, 128, 128, 3, padding=1), count=3),
        # Stage 3: downsample to 14x14, 256 channels.
        NetworkLayer(_conv("rn18_s3_down3x3", 28, 128, 256, 3, stride=2, padding=1)),
        NetworkLayer(_conv("rn18_s3_skip1x1", 28, 128, 256, 1, stride=2)),
        NetworkLayer(_conv("rn18_s3_conv3x3", 14, 256, 256, 3, padding=1), count=3),
        # Stage 4: downsample to 7x7, 512 channels.
        NetworkLayer(_conv("rn18_s4_down3x3", 14, 256, 512, 3, stride=2, padding=1)),
        NetworkLayer(_conv("rn18_s4_skip1x1", 14, 256, 512, 1, stride=2)),
        NetworkLayer(_conv("rn18_s4_conv3x3", 7, 512, 512, 3, padding=1), count=3),
        # Classifier.
        NetworkLayer(_gemm("rn18_fc", 1, 1000, 512)),
    ]
    return NetworkModel(name="ResNet-18", kind="CNN", layers=tuple(layers))


# ----------------------------------------------------------------------
# VGG-16 (Simonyan & Zisserman, 224x224 input).
# ----------------------------------------------------------------------
def vgg16() -> NetworkModel:
    layers = [
        NetworkLayer(_conv("vgg_conv1_1", 224, 3, 64, 3, padding=1)),
        NetworkLayer(_conv("vgg_conv1_2", 224, 64, 64, 3, padding=1)),
        NetworkLayer(_conv("vgg_conv2_1", 112, 64, 128, 3, padding=1)),
        NetworkLayer(_conv("vgg_conv2_2", 112, 128, 128, 3, padding=1)),
        NetworkLayer(_conv("vgg_conv3_1", 56, 128, 256, 3, padding=1)),
        NetworkLayer(_conv("vgg_conv3_x", 56, 256, 256, 3, padding=1), count=2),
        NetworkLayer(_conv("vgg_conv4_1", 28, 256, 512, 3, padding=1)),
        NetworkLayer(_conv("vgg_conv4_x", 28, 512, 512, 3, padding=1), count=2),
        NetworkLayer(_conv("vgg_conv5_x", 14, 512, 512, 3, padding=1), count=3),
        NetworkLayer(_gemm("vgg_fc6", 1, 4096, 25088)),
        NetworkLayer(_gemm("vgg_fc7", 1, 4096, 4096)),
        NetworkLayer(_gemm("vgg_fc8", 1, 1000, 4096)),
    ]
    return NetworkModel(name="VGG-16", kind="CNN", layers=tuple(layers))


# ----------------------------------------------------------------------
# ViT-Base/16 (Dosovitskiy et al., 224x224 input, 196+1 tokens, 12 blocks).
# ----------------------------------------------------------------------
def vit_base_16() -> NetworkModel:
    tokens = 197
    hidden = 768
    heads = 12
    head_dim = hidden // heads
    mlp = 3072
    blocks = 12
    layers = [
        # Patch embedding: a 16x16/16 convolution == GeMM of 196 patches.
        NetworkLayer(_gemm("vit_patch_embed", 196, hidden, 16 * 16 * 3)),
        # Per encoder block.
        NetworkLayer(_gemm("vit_qkv_proj", tokens, 3 * hidden, hidden), count=blocks),
        NetworkLayer(
            _gemm("vit_attn_scores", tokens, tokens, head_dim, transposed=True),
            count=blocks * heads,
        ),
        NetworkLayer(
            _gemm("vit_attn_context", tokens, head_dim, tokens), count=blocks * heads
        ),
        NetworkLayer(_gemm("vit_attn_out", tokens, hidden, hidden), count=blocks),
        NetworkLayer(_gemm("vit_mlp_fc1", tokens, mlp, hidden), count=blocks),
        NetworkLayer(_gemm("vit_mlp_fc2", tokens, hidden, mlp), count=blocks),
        # Classification head.
        NetworkLayer(_gemm("vit_head", 1, 1000, hidden)),
    ]
    return NetworkModel(name="ViT-B-16", kind="Transformer", layers=tuple(layers))


# ----------------------------------------------------------------------
# BERT-Base (Devlin et al., sequence length 128, 12 layers).
# ----------------------------------------------------------------------
def bert_base(sequence_length: int = 128) -> NetworkModel:
    hidden = 768
    heads = 12
    head_dim = hidden // heads
    ffn = 3072
    blocks = 12
    seq = sequence_length
    layers = [
        NetworkLayer(_gemm("bert_qkv_proj", seq, 3 * hidden, hidden), count=blocks),
        NetworkLayer(
            _gemm("bert_attn_scores", seq, seq, head_dim, transposed=True),
            count=blocks * heads,
        ),
        NetworkLayer(_gemm("bert_attn_context", seq, head_dim, seq), count=blocks * heads),
        NetworkLayer(_gemm("bert_attn_out", seq, hidden, hidden), count=blocks),
        NetworkLayer(_gemm("bert_ffn_fc1", seq, ffn, hidden), count=blocks),
        NetworkLayer(_gemm("bert_ffn_fc2", seq, hidden, ffn), count=blocks),
        NetworkLayer(_gemm("bert_pooler", 1, hidden, hidden)),
    ]
    return NetworkModel(name="BERT-Base", kind="Transformer", layers=tuple(layers))


# ----------------------------------------------------------------------
# MobileNetV2 (Sandler et al., 224x224 input) — depthwise-heavy.
# ----------------------------------------------------------------------
def _inverted_residual(
    tag: str,
    hw: int,
    cin: int,
    cout: int,
    stride: int = 1,
    expansion: int = 6,
    repeats: int = 1,
) -> List[NetworkLayer]:
    """One MobileNetV2 bottleneck stage: expand 1x1 → depthwise 3x3 → project 1x1.

    Depthwise convolutions have no cross-channel reduction, so each one is
    modelled as a per-channel ``1 -> 1`` convolution repeated ``channels``
    times — preserving the MAC count and the bandwidth-bound, reduction-poor
    access pattern that makes these layers hard for a GeMM-style engine.
    """
    hidden = cin * expansion
    out_hw = hw // stride
    layers: List[NetworkLayer] = []
    if expansion != 1:
        layers.append(NetworkLayer(_conv(f"{tag}_expand1x1", hw, cin, hidden, 1)))
    layers.append(
        NetworkLayer(
            _conv(f"{tag}_dw3x3", hw, 1, 1, 3, stride=stride, padding=1),
            count=hidden,
        )
    )
    layers.append(NetworkLayer(_conv(f"{tag}_project1x1", out_hw, hidden, cout, 1)))
    for repeat in range(1, repeats):
        rtag = f"{tag}r{repeat}"
        rhidden = cout * expansion
        layers.append(NetworkLayer(_conv(f"{rtag}_expand1x1", out_hw, cout, rhidden, 1)))
        layers.append(
            NetworkLayer(
                _conv(f"{rtag}_dw3x3", out_hw, 1, 1, 3, padding=1), count=rhidden
            )
        )
        layers.append(NetworkLayer(_conv(f"{rtag}_project1x1", out_hw, rhidden, cout, 1)))
    return layers


def mobilenet_v2() -> NetworkModel:
    """MobileNetV2: the depthwise-separable, bandwidth-bound CNN scenario."""
    layers = [NetworkLayer(_conv("mb2_conv1", 224, 3, 32, 3, stride=2, padding=1))]
    layers += _inverted_residual("mb2_b1", 112, 32, 16, expansion=1)
    layers += _inverted_residual("mb2_b2", 112, 16, 24, stride=2, repeats=2)
    layers += _inverted_residual("mb2_b3", 56, 24, 32, stride=2, repeats=3)
    layers += _inverted_residual("mb2_b4", 28, 32, 64, stride=2, repeats=4)
    layers += _inverted_residual("mb2_b5", 14, 64, 96, repeats=3)
    layers += _inverted_residual("mb2_b6", 14, 96, 160, stride=2, repeats=3)
    layers += _inverted_residual("mb2_b7", 7, 160, 320)
    layers.append(NetworkLayer(_conv("mb2_conv_last", 7, 320, 1280, 1)))
    layers.append(NetworkLayer(_gemm("mb2_fc", 1, 1000, 1280)))
    return NetworkModel(name="MobileNet-V2", kind="CNN", layers=tuple(layers))


# ----------------------------------------------------------------------
# Registry used by the Table III experiment.
# ----------------------------------------------------------------------
def benchmark_networks() -> Dict[str, NetworkModel]:
    """The four networks of Table III plus the depthwise-heavy MobileNetV2.

    The first four are the paper's Table III columns; MobileNetV2 extends
    the suite with a bandwidth-bound scenario for design-space exploration.
    """
    return {
        "ResNet-18": resnet18(),
        "VGG-16": vgg16(),
        "ViT-B-16": vit_base_16(),
        "BERT-Base": bert_base(),
        "MobileNet-V2": mobilenet_v2(),
    }


def network_by_name(name: str) -> NetworkModel:
    networks = benchmark_networks()
    if name not in networks:
        raise KeyError(f"unknown network {name!r}; available: {sorted(networks)}")
    return networks[name]


def total_layer_instances(model: NetworkModel) -> int:
    """Total number of layer executions (counting repetitions)."""
    return sum(layer.count for layer in model.layers)


def compute_distribution(model: NetworkModel) -> List[Tuple[str, float]]:
    """Per-layer share of the network's MACs (for reports)."""
    total = model.total_macs
    return [
        (layer.workload.name, layer.total_macs / total if total else 0.0)
        for layer in model.layers
    ]
