"""Workload specifications, the synthetic ablation suite and DNN layer tables."""

from .networks import (
    NetworkLayer,
    NetworkModel,
    benchmark_networks,
    bert_base,
    compute_distribution,
    network_by_name,
    resnet18,
    total_layer_instances,
    vgg16,
    vit_base_16,
)
from .spec import (
    ConvWorkload,
    GemmWorkload,
    Workload,
    WorkloadGroup,
    is_convolution,
    is_gemm,
    workload_group,
)
from .synthetic import (
    FULL_SUITE_COUNTS,
    full_suite_total,
    generate_conv_workloads,
    generate_gemm_workloads,
    stratified_subset,
    suite_size,
    synthetic_suite,
)

__all__ = [
    "ConvWorkload",
    "GemmWorkload",
    "Workload",
    "WorkloadGroup",
    "workload_group",
    "is_convolution",
    "is_gemm",
    "synthetic_suite",
    "generate_gemm_workloads",
    "generate_conv_workloads",
    "stratified_subset",
    "suite_size",
    "full_suite_total",
    "FULL_SUITE_COUNTS",
    "NetworkLayer",
    "NetworkModel",
    "benchmark_networks",
    "network_by_name",
    "resnet18",
    "vgg16",
    "vit_base_16",
    "bert_base",
    "compute_distribution",
    "total_layer_instances",
]
