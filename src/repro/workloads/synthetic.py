"""Synthetic DNN workload suite used by the ablation study (paper §IV-B).

The paper evaluates 260 synthetic workloads split into three groups — GeMM,
transposed GeMM and convolution — with "various matrix sizes ... along with
diverse feature map sizes, channels, kernel sizes, and strides ...
effectively representing typical Transformer and CNN layers".

This module regenerates such a suite deterministically: 100 GeMM, 80
transposed GeMM and 80 convolution workloads whose dimensions are drawn from
structured grids representative of Transformer projections/attention blocks
and CNN stages, but scaled so that all operands of one kernel fit the 128 KiB
scratchpad of the evaluation system and a pure-Python cycle simulation stays
tractable.  A stratified subset selector is provided so the default benchmark
run can cover every corner of the grid in a few minutes; the full suite is
selected with ``REPRO_FULL_SUITE=1`` (see ``benchmarks/``).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence

from .spec import ConvWorkload, GemmWorkload, Workload, WorkloadGroup

#: Number of workloads per group in the full suite (totals 260 as in §IV-B).
FULL_SUITE_COUNTS = {
    WorkloadGroup.GEMM: 100,
    WorkloadGroup.TRANSPOSED_GEMM: 80,
    WorkloadGroup.CONVOLUTION: 80,
}

# Dimension grids.  GeMM sizes follow typical Transformer sub-layer shapes
# (token counts × hidden/FFN slices); convolutions follow CNN stages with
# pointwise, 3x3, 5x5 and 7x7 kernels and unit / downsampling strides.  The
# sizes are scaled so that all operands of one kernel fit the 128 KiB
# scratchpad (the real layers are tiled to the same footprint by the host).
_GEMM_M = (32, 48, 64, 80, 96, 128)
_GEMM_N = (32, 48, 64, 96)
_GEMM_K = (32, 64, 96, 128, 160, 192)

_CONV_FMAPS = ((16, 16), (14, 14), (12, 12), (10, 10))
_CONV_CHANNELS = ((16, 16), (16, 32), (32, 32), (32, 16), (8, 32), (24, 24))
_CONV_KERNELS = ((1, 1), (3, 3), (5, 5), (7, 7))
_CONV_STRIDES = (1, 2)


#: Scratchpad budget every synthetic kernel must fit, including the
#: fully-materialised operands of the feature-disabled configurations
#: (expanded init tiles when the Broadcaster is off).
_SCRATCHPAD_BUDGET_BYTES = 120 * 1024


def _gemm_fits(m: int, n: int, k: int) -> bool:
    footprint = m * k + k * n + 8 * m * n + 4 * n
    return footprint <= _SCRATCHPAD_BUDGET_BYTES


def _conv_fits(height, width, cin, cout, kh, kw, stride) -> bool:
    out_h = (height - kh) // stride + 1
    out_w = (width - kw) // stride + 1
    tiles_m = out_h * -(-out_w // 8)
    tiles_n = -(-cout // 8)
    footprint = (
        height * (width + 8) * max(cin, 8)
        + kh * kw * max(cin, 8) * max(cout, 8)
        + 2 * tiles_m * tiles_n * 256
    )
    return footprint <= _SCRATCHPAD_BUDGET_BYTES


def _gemm_dimension_grid() -> List[tuple]:
    """Deterministic (M, N, K) grid ordered to interleave small and large."""
    combos = [
        (m, n, k)
        for m, n, k in itertools.product(_GEMM_M, _GEMM_N, _GEMM_K)
        if _gemm_fits(m, n, k)
    ]
    # Interleave by round-robin over K so consecutive entries differ in shape.
    combos.sort(key=lambda mnk: (mnk[2], mnk[0], mnk[1]))
    return combos


def _conv_dimension_grid() -> List[tuple]:
    combos = []
    for (height, width), (cin, cout), (kh, kw), stride in itertools.product(
        _CONV_FMAPS, _CONV_CHANNELS, _CONV_KERNELS, _CONV_STRIDES
    ):
        if kh > height or kw > width:
            continue
        if stride > 1 and (kh == 1 or height < 2 * kh):
            # Strided pointwise layers are rare; skip degenerate cases.
            continue
        if not _conv_fits(height, width, cin, cout, kh, kw, stride):
            continue
        combos.append((height, width, cin, cout, kh, kw, stride))
    return combos


def generate_gemm_workloads(
    count: int, transposed: bool = False, with_bias: bool = True
) -> List[GemmWorkload]:
    """Generate ``count`` (transposed-)GeMM workloads from the grid."""
    grid = _gemm_dimension_grid()
    if count > len(grid):
        raise ValueError(
            f"requested {count} GeMM workloads but the grid only has {len(grid)}"
        )
    prefix = "tgemm" if transposed else "gemm"
    workloads = []
    for index in range(count):
        m, n, k = grid[index]
        workloads.append(
            GemmWorkload(
                name=f"{prefix}_m{m}_n{n}_k{k}",
                m=m,
                n=n,
                k=k,
                transposed_a=transposed,
                with_bias=with_bias,
            )
        )
    return workloads


def generate_conv_workloads(count: int, with_bias: bool = True) -> List[ConvWorkload]:
    """Generate ``count`` convolution workloads from the grid."""
    grid = _conv_dimension_grid()
    if count > len(grid):
        raise ValueError(
            f"requested {count} convolution workloads but the grid only has "
            f"{len(grid)}"
        )
    workloads = []
    for index in range(count):
        height, width, cin, cout, kh, kw, stride = grid[index]
        workloads.append(
            ConvWorkload(
                name=f"conv_h{height}_w{width}_c{cin}_k{cout}_f{kh}x{kw}_s{stride}",
                in_height=height,
                in_width=width,
                in_channels=cin,
                out_channels=cout,
                kernel_h=kh,
                kernel_w=kw,
                stride=stride,
                with_bias=with_bias,
            )
        )
    return workloads


def synthetic_suite(
    counts: Optional[Dict[WorkloadGroup, int]] = None,
) -> Dict[WorkloadGroup, List[Workload]]:
    """Build the synthetic workload suite.

    Parameters
    ----------
    counts:
        Number of workloads per group; defaults to the paper's 100/80/80.
    """
    counts = dict(FULL_SUITE_COUNTS if counts is None else counts)
    suite: Dict[WorkloadGroup, List[Workload]] = {}
    suite[WorkloadGroup.GEMM] = list(
        generate_gemm_workloads(counts.get(WorkloadGroup.GEMM, 0), transposed=False)
    )
    suite[WorkloadGroup.TRANSPOSED_GEMM] = list(
        generate_gemm_workloads(
            counts.get(WorkloadGroup.TRANSPOSED_GEMM, 0), transposed=True
        )
    )
    suite[WorkloadGroup.CONVOLUTION] = list(
        generate_conv_workloads(counts.get(WorkloadGroup.CONVOLUTION, 0))
    )
    return suite


def stratified_subset(
    workloads: Sequence[Workload], count: int
) -> List[Workload]:
    """Pick ``count`` workloads spread evenly across the sequence.

    Used by the default benchmark run: the full grid is ordered so that an
    even stride through it covers small/large and unit/strided cases.
    """
    if count <= 0:
        return []
    if count >= len(workloads):
        return list(workloads)
    step = len(workloads) / count
    indices = sorted({int(i * step) for i in range(count)})
    return [workloads[index] for index in indices]


def suite_size(suite: Dict[WorkloadGroup, List[Workload]]) -> int:
    """Total number of workloads in a suite dictionary."""
    return sum(len(group) for group in suite.values())


def full_suite_total() -> int:
    """Total size of the paper-equivalent suite (260)."""
    return sum(FULL_SUITE_COUNTS.values())
