"""Experiment modules: one per paper table/figure (importable and runnable).

Each module exposes ``run(...) -> dict`` (the raw data), ``report(results)
-> str`` (a formatted text report) and ``main()`` (print the report).  They
are runnable as ``python -m repro.experiments.<name>`` and are wrapped by the
``benchmarks/`` harness.
"""

from typing import Callable, Dict

from . import (
    fig4_agu,
    fig7_ablation,
    fig8_fpga,
    fig9_breakdown,
    fig10_comparison,
    table1_features,
    table3_networks,
)

#: Registry mapping experiment id (paper table/figure) to its module.
EXPERIMENTS = {
    "table1": table1_features,
    "fig4": fig4_agu,
    "fig7": fig7_ablation,
    "fig8": fig8_fpga,
    "fig9": fig9_breakdown,
    "fig10": fig10_comparison,
    "table3": table3_networks,
}


def run_experiment(name: str, **kwargs) -> dict:
    """Run one experiment by its registry name."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[name].run(**kwargs)


def report_experiment(name: str, results: dict) -> str:
    return EXPERIMENTS[name].report(results)


__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "report_experiment",
    "table1_features",
    "fig4_agu",
    "fig7_ablation",
    "fig8_fpga",
    "fig9_breakdown",
    "fig10_comparison",
    "table3_networks",
]
