"""Figure 9 and §IV-D — area breakdown, power breakdown, energy efficiency.

Reproduces:

* Fig. 9(a) — system cell-area breakdown (memory, host, GeMM, quantizer and
  the five DataMaestros individually);
* Fig. 9(b) — area composition of DataMaestro A (FIFOs, AGU, MIC, remapper,
  Transposer);
* Fig. 9(c) — system power breakdown while executing GeMM-64 at 1 GHz;
* the §IV-D headline numbers (total power, energy efficiency).

Area/power come from the parametric models driven by simulated activity; the
report prints them next to the paper's reported percentages.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.area import AreaModel
from ..analysis.power import gemm64_power_report
from ..analysis.reporting import format_percentage_map, format_table
from ..analysis.technology import PAPER_SILICON_REFERENCE
from ..runtime.simulator import Simulator
from ..system.design import AcceleratorSystemDesign


def run(
    design: Optional[AcceleratorSystemDesign] = None,
    seed: int = 0,
    simulator: Optional[Simulator] = None,
) -> Dict[str, object]:
    area_model = AreaModel(design)
    area = area_model.system_breakdown()
    power_report = gemm64_power_report(
        design, area_breakdown=area, seed=seed, simulator=simulator
    )
    return {
        "area_shares_percent": area.shares_percent(),
        "streamer_area_shares_percent": area.streamer_shares_percent(),
        "datamaestro_a_composition_percent": area.streamers["A"].shares_percent(),
        "power_shares_percent": power_report["power_shares_percent"],
        "total_power_mw": power_report["total_power_mw"],
        "energy_efficiency_tops_per_w": power_report["energy_efficiency_tops_per_w"],
        "gemm64_utilization": power_report["utilization"],
        "paper_reference": PAPER_SILICON_REFERENCE,
    }


def report(results: Dict[str, object]) -> str:
    paper = results["paper_reference"]
    sections = [
        format_percentage_map(
            results["area_shares_percent"],
            title="Figure 9(a): system cell-area breakdown",
            reference=paper["area_share_percent"],
        ),
        format_table(
            ["DataMaestro", "area share of system (%)", "paper (%)"],
            [
                [name, share, ref]
                for (name, share), ref in zip(
                    results["streamer_area_shares_percent"].items(),
                    [2.24, 1.76, 1.27, 0.89, 0.27],
                )
            ],
            title="Figure 9(a): per-DataMaestro area share",
        ),
        format_percentage_map(
            {
                key.replace("fifo_buffers", "data_fifos"): value
                for key, value in results[
                    "datamaestro_a_composition_percent"
                ].items()
            },
            title="Figure 9(b): DataMaestro A area composition",
            reference=paper["datamaestro_a_share_percent"],
        ),
        format_percentage_map(
            results["power_shares_percent"],
            title="Figure 9(c): system power breakdown (GeMM-64 @ 1 GHz)",
            reference=paper["power_share_percent"],
        ),
        format_table(
            ["metric", "model", "paper"],
            [
                ["total power (mW)", results["total_power_mw"], paper["total_power_mw"]],
                [
                    "energy efficiency (TOPS/W)",
                    results["energy_efficiency_tops_per_w"],
                    paper["energy_efficiency_tops_per_w"],
                ],
                ["GeMM-64 utilization", results["gemm64_utilization"], 1.0],
            ],
            title="Section IV-D headline figures",
        ),
    ]
    return "\n\n".join(sections)


def main() -> str:
    text = report(run())
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
