"""Figure 10 — comparison with SotA accelerators and streaming engines.

Left panel: normalized throughput (GOPS at 512 PEs, 1 GHz) of the
DataMaestro-boosted GeMM core versus Gemmini (OS/WS), BitWave and FEATHER on
four representative kernels (GeMM-64, GeMM-128, a 7×7 and a 3×3
convolution).  DataMaestro's utilization is *measured* by cycle simulation;
the comparators use the behavioural models in :mod:`repro.baselines`
(documented approximations of each accelerator's data-orchestration scheme).

Right panel: share of system area/power spent on data movement, comparing
the five DataMaestros (from the repository's area/power models) with the
numbers the paper compiled from the literature for Buffet, Softbrain,
BitWave and FEATHER.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.area import AreaModel
from ..analysis.power import gemm64_power_report
from ..analysis.reporting import format_comparison, format_table
from ..baselines import DataMaestroSolution, overhead_comparison, throughput_baselines
from ..runtime.simulator import Simulator
from ..system.design import AcceleratorSystemDesign, datamaestro_evaluation_system
from ..workloads.spec import ConvWorkload, GemmWorkload, Workload

#: Number of PEs and clock every system is normalized to (as in the paper).
NORMALIZED_PES = 512
NORMALIZED_FREQUENCY_GHZ = 1.0

#: Paper reference: the DataMaestro-boosted core is 1.05–21.39× faster.
PAPER_SPEEDUP_RANGE = (1.05, 21.39)

#: Paper reference for the right panel (% of system area / power).
PAPER_OVERHEAD_TABLE = {
    "Buffet": {"area_percent": 2.0, "power_percent": 14.0},
    "Softbrain": {"area_percent": 4.3, "power_percent": 15.3},
    "BitWave": {"area_percent": 11.9, "power_percent": 25.5},
    "FEATHER": {"area_percent": 8.9, "power_percent": None},
    "DataMaestro": {"area_percent": 6.43, "power_percent": 15.06},
}


def comparison_kernels() -> List[Workload]:
    """The four representative kernels of Figure 10 (left)."""
    return [
        GemmWorkload(name="GeMM-64", m=64, n=64, k=64),
        GemmWorkload(name="GeMM-128", m=128, n=128, k=128),
        ConvWorkload(
            name="Conv-7x7",
            in_height=16,
            in_width=16,
            in_channels=16,
            out_channels=32,
            kernel_h=7,
            kernel_w=7,
            stride=2,
            padding=3,
        ),
        ConvWorkload(
            name="Conv-3x3",
            in_height=16,
            in_width=16,
            in_channels=32,
            out_channels=32,
            kernel_h=3,
            kernel_w=3,
            stride=1,
            padding=1,
        ),
    ]


def run(
    design: Optional[AcceleratorSystemDesign] = None,
    seed: int = 0,
    simulator: Optional[Simulator] = None,
) -> Dict[str, object]:
    design = design or datamaestro_evaluation_system()
    kernels = comparison_kernels()
    datamaestro = DataMaestroSolution(design, seed=seed, simulator=simulator)
    # Comparators come from the capability-filtered BASELINE_REGISTRY, not a
    # hand-written list.
    baselines = throughput_baselines()

    throughput: Dict[str, Dict[str, float]] = {}
    utilization: Dict[str, Dict[str, float]] = {}
    speedups: Dict[str, Dict[str, float]] = {}
    for kernel in kernels:
        throughput[kernel.name] = {}
        utilization[kernel.name] = {}
        speedups[kernel.name] = {}
        our_util = datamaestro.utilization(kernel)
        our_gops = 2.0 * NORMALIZED_PES * NORMALIZED_FREQUENCY_GHZ * our_util
        for baseline in baselines:
            base_util = baseline.utilization(kernel)
            base_gops = 2.0 * NORMALIZED_PES * NORMALIZED_FREQUENCY_GHZ * base_util
            throughput[kernel.name][baseline.name] = base_gops
            utilization[kernel.name][baseline.name] = base_util
            speedups[kernel.name][baseline.name] = (
                our_gops / base_gops if base_gops > 0 else float("inf")
            )
        throughput[kernel.name]["DataMaestro-boosted"] = our_gops
        utilization[kernel.name]["DataMaestro-boosted"] = our_util

    all_speedups = [
        value for per_kernel in speedups.values() for value in per_kernel.values()
    ]

    # Right panel: data movement area/power overhead.
    area_shares = AreaModel(design).system_breakdown().shares_percent()
    power_shares = gemm64_power_report(design, seed=seed, simulator=simulator)[
        "power_shares_percent"
    ]
    overhead = {
        name: {
            "area_percent": profile.area_percent,
            "power_percent": profile.power_percent,
        }
        for name, profile in overhead_comparison().items()
    }
    overhead["DataMaestro (model)"] = {
        "area_percent": area_shares["datamaestros"],
        "power_percent": power_shares["datamaestros"],
    }

    return {
        "normalized_throughput_gops": throughput,
        "utilization": utilization,
        "speedup_over_baselines": speedups,
        "speedup_range": (min(all_speedups), max(all_speedups)),
        "paper_speedup_range": PAPER_SPEEDUP_RANGE,
        "overhead_comparison": overhead,
        "paper_overhead_table": PAPER_OVERHEAD_TABLE,
    }


def report(results: Dict[str, object]) -> str:
    sections = [
        format_comparison(
            "Figure 10 (left): normalized throughput (GOPS, 512 PEs @ 1 GHz)",
            results["normalized_throughput_gops"],
            float_format="{:.0f}",
        ),
        format_comparison(
            "DataMaestro-boosted speedup over each baseline",
            results["speedup_over_baselines"],
            float_format="{:.2f}",
        ),
        (
            "speedup range: "
            f"{results['speedup_range'][0]:.2f}x - {results['speedup_range'][1]:.2f}x "
            f"(paper: {results['paper_speedup_range'][0]}x - "
            f"{results['paper_speedup_range'][1]}x)"
        ),
        format_table(
            ["solution", "area (%)", "power (%)"],
            [
                [
                    name,
                    values["area_percent"] if values["area_percent"] is not None else "N/A",
                    values["power_percent"]
                    if values["power_percent"] is not None
                    else "N/A",
                ]
                for name, values in results["overhead_comparison"].items()
            ],
            title="Figure 10 (right): data movement area/power share of the system",
        ),
    ]
    return "\n\n".join(sections)


def main() -> str:
    text = report(run())
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
