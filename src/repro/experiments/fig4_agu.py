"""Figure 4 — AGU address-generation example.

Regenerates the exact temporal/spatial address sequences of the paper's
Figure 4: a 4×4×4 GeMM mapped on a 2×2×2 PE array, programmed with
``Bt = [2, 2, 2]``, ``St = [4, 0, 8]``, ``Bs = [2, 2]``, ``Ss = [1, 2]``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..analysis.reporting import format_table
from ..core.agu import AddressGenerationUnit

#: The configuration printed in Figure 4(b).
FIGURE4_CONFIG = {
    "temporal_bounds": (2, 2, 2),
    "temporal_strides": (4, 0, 8),
    "spatial_bounds": (2, 2),
    "spatial_strides": (1, 2),
    "base_address": 0,
}

#: The address table of Figure 4(c): per clock cycle, TA and SA0..SA3.
PAPER_FIGURE4_ADDRESSES: List[Tuple[int, Tuple[int, int, int, int]]] = [
    (0, (0, 1, 2, 3)),
    (4, (4, 5, 6, 7)),
    (0, (0, 1, 2, 3)),
    (4, (4, 5, 6, 7)),
    (8, (8, 9, 10, 11)),
    (12, (12, 13, 14, 15)),
    (8, (8, 9, 10, 11)),
    (12, (12, 13, 14, 15)),
]


def run() -> Dict[str, object]:
    """Generate the Figure 4 address sequence with the real AGU model."""
    agu = AddressGenerationUnit(**FIGURE4_CONFIG)
    rows = []
    for bundle in agu.iter_bundles():
        rows.append(
            {
                "cycle": bundle.step,
                "temporal_address": bundle.temporal_address,
                "spatial_addresses": bundle.addresses,
            }
        )
    matches_paper = [
        (row["temporal_address"], row["spatial_addresses"]) for row in rows
    ] == PAPER_FIGURE4_ADDRESSES
    return {
        "config": dict(FIGURE4_CONFIG),
        "rows": rows,
        "matches_paper": matches_paper,
    }


def report(results: Dict[str, object]) -> str:
    table = format_table(
        headers=["CC", "TA", "SA0", "SA1", "SA2", "SA3"],
        rows=[
            [row["cycle"], row["temporal_address"], *row["spatial_addresses"]]
            for row in results["rows"]
        ],
        title="Figure 4: N-D affine address generation example (4x4x4 GeMM on 2x2x2 PEs)",
    )
    footer = f"\nmatches the paper's Figure 4(c): {results['matches_paper']}"
    return table + footer


def main() -> str:
    text = report(run())
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
