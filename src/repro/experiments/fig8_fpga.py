"""Figure 8 — FPGA prototype resource utilization.

Reproduces the resource table of the paper's Figure 8 with the parametric
FPGA model (:class:`repro.analysis.area.FpgaResourceModel`), printed next to
the paper's reported VPK180 numbers.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.area import FpgaResourceModel
from ..analysis.reporting import format_table
from ..analysis.technology import PAPER_FPGA_REFERENCE
from ..system.design import AcceleratorSystemDesign


def run(design: Optional[AcceleratorSystemDesign] = None) -> Dict[str, object]:
    model = FpgaResourceModel(design)
    resources = model.estimate()
    return {
        "model": {
            "luts_total": resources.luts_total,
            "regs_total": resources.regs_total,
            "luts_gemm": resources.luts_gemm,
            "regs_gemm": resources.regs_gemm,
            "luts_datamaestros": resources.luts_datamaestros,
            "regs_datamaestros": resources.regs_datamaestros,
            "luts_gemm_percent": 100.0 * resources.luts_gemm / resources.luts_total,
            "luts_datamaestros_percent": 100.0
            * resources.luts_datamaestros
            / resources.luts_total,
        },
        "paper": dict(PAPER_FPGA_REFERENCE),
        "resources": resources,
    }


def report(results: Dict[str, object]) -> str:
    model = results["model"]
    paper = results["paper"]
    rows = [
        ["LUTs total", model["luts_total"], paper["luts_total"]],
        ["Regs total", model["regs_total"], paper["regs_total"]],
        ["LUTs GeMM", model["luts_gemm"], paper["luts_gemm"]],
        ["Regs GeMM", model["regs_gemm"], paper["regs_gemm"]],
        ["LUTs DataMaestros", model["luts_datamaestros"], paper["luts_datamaestros"]],
        ["Regs DataMaestros", model["regs_datamaestros"], paper["regs_datamaestros"]],
        ["LUTs GeMM (%)", model["luts_gemm_percent"], 46.79],
        ["LUTs DataMaestros (%)", model["luts_datamaestros_percent"], 5.28],
    ]
    return format_table(
        ["resource", "model", "paper (VPK180)"],
        rows,
        title="Figure 8: FPGA resource utilization of the evaluation system",
        float_format="{:.0f}",
    )


def main() -> str:
    text = report(run())
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
