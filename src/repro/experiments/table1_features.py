"""Table I — qualitative comparison of SotA data-movement solutions.

Regenerates the paper's feature-comparison table from the metadata attached
to every comparator model in :mod:`repro.baselines` plus DataMaestro itself.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.reporting import format_check_marks
from ..baselines import TABLE1_FEATURES, table1_solutions

#: The paper's Table I content, used by tests to check the regenerated table.
PAPER_TABLE1 = {
    "DataMaestro": {
        "open_source": True,
        "reusable_design": True,
        "decoupled_access_execute": True,
        "programmable_affine_dims": "N-D",
        "fine_grained_prefetch": True,
        "runtime_addressing_mode_switching": True,
        "on_the_fly_data_manipulation": True,
    },
    "Buffet": {
        "open_source": True,
        "reusable_design": True,
        "decoupled_access_execute": True,
        "programmable_affine_dims": "2-D",
        "fine_grained_prefetch": True,
        "runtime_addressing_mode_switching": False,
        "on_the_fly_data_manipulation": False,
    },
    "Gemmini (OS)": {
        "open_source": True,
        "reusable_design": False,
        "decoupled_access_execute": False,
        "programmable_affine_dims": "2-D",
        "fine_grained_prefetch": False,
        "runtime_addressing_mode_switching": False,
        "on_the_fly_data_manipulation": False,
    },
}


def run() -> Dict[str, Dict[str, object]]:
    """Build the feature matrix: solution name → feature → value."""
    matrix: Dict[str, Dict[str, object]] = {}
    for solution in table1_solutions():
        matrix[solution.name] = solution.feature_profile().as_dict()
    return matrix


def report(matrix: Dict[str, Dict[str, object]]) -> str:
    return format_check_marks(
        matrix,
        feature_order=list(TABLE1_FEATURES),
        title="Table I: comparison of SotA data movement solutions",
    )


def main() -> str:
    text = report(run())
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
