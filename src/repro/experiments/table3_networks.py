"""Table III — GeMM-core utilization on real-world DNN workloads.

Estimates the utilization of ResNet-18, VGG-16, ViT-B/16 and BERT-Base on the
DataMaestro-boosted system by cycle-simulating a representative crop of every
unique layer and aggregating with compute weights (see
:mod:`repro.analysis.network_perf` and DESIGN.md §4).  The benchmark suite
additionally includes MobileNetV2 — not a paper column (its paper utilization
reports ``N/A``) but the depthwise-heavy, bandwidth-bound scenario the
design-space exploration engine (``repro.explore``) covers.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.network_perf import NetworkPerformanceEstimator
from ..analysis.reporting import format_table
from ..engine import DEFAULT_ENGINE
from ..runtime.simulator import Simulator
from ..system.design import AcceleratorSystemDesign
from ..workloads.networks import benchmark_networks

#: The paper's Table III (GeMM-core utilization in %).
PAPER_TABLE3 = {
    "ResNet-18": 95.45,
    "VGG-16": 100.00,
    "ViT-B-16": 99.98,
    "BERT-Base": 97.85,
}


def run(
    design: Optional[AcceleratorSystemDesign] = None,
    networks: Optional[Dict[str, object]] = None,
    seed: int = 0,
    simulator: Optional[Simulator] = None,
    engine: str = DEFAULT_ENGINE,
) -> Dict[str, object]:
    estimator = NetworkPerformanceEstimator(
        design=design, seed=seed, simulator=simulator, engine=engine
    )
    models = networks or benchmark_networks()
    estimates = estimator.estimate_networks(models)
    summary = {}
    for name, estimate in estimates.items():
        worst = estimate.worst_layer()
        summary[name] = {
            "kind": estimate.kind,
            "utilization_percent": estimate.utilization_percent,
            "paper_utilization_percent": PAPER_TABLE3.get(name),
            "num_unique_layers": len(estimate.layers),
            "worst_layer": worst.name if worst else None,
            "worst_layer_utilization": worst.utilization if worst else None,
        }
    return {"summary": summary, "estimates": estimates, "paper": dict(PAPER_TABLE3)}


def report(results: Dict[str, object]) -> str:
    rows = []
    for name, info in results["summary"].items():
        rows.append(
            [
                name,
                info["kind"],
                info["utilization_percent"],
                info["paper_utilization_percent"]
                if info["paper_utilization_percent"] is not None
                else "N/A",
                info["worst_layer"] or "-",
            ]
        )
    table = format_table(
        ["network", "type", "utilization (%) model", "utilization (%) paper", "worst layer"],
        rows,
        title="Table III: GeMM-core utilization under real-world DNN workloads",
    )
    details = []
    for name, estimate in results["estimates"].items():
        layer_rows = [
            [
                layer.name,
                layer.group,
                layer.count,
                layer.ideal_cycles_full,
                100.0 * layer.utilization,
            ]
            for layer in estimate.layers
        ]
        details.append(
            format_table(
                ["layer", "group", "count", "ideal cycles", "utilization (%)"],
                layer_rows,
                title=f"{name}: per-layer estimates",
            )
        )
    return "\n\n".join([table] + details)


def main() -> str:
    text = report(run())
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
