"""Figure 7 — ablation study of the DataMaestro features.

Regenerates both panels of the paper's Figure 7 on the synthetic workload
suite:

* (a) GeMM-core utilization distribution (box statistics) and per-group
  averages for architectures ① through ⑥;
* (b) data access counts normalized to the baseline architecture ①.

The full 260-workload suite is used when ``full=True`` (or the environment
variable ``REPRO_FULL_SUITE=1`` is set); otherwise a stratified subset keeps
the pure-Python run time to a few minutes.  EXPERIMENTS.md records which
setting produced the published numbers.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.ablation import STEP_LABELS, AblationResults, AblationStudy
from ..analysis.reporting import format_comparison, format_table
from ..engine import DEFAULT_ENGINE
from ..runtime.simulator import Simulator
from ..system.design import AcceleratorSystemDesign
from ..workloads.spec import WorkloadGroup
from ..workloads.synthetic import synthetic_suite

#: Workloads per group in the default (quick) configuration.
DEFAULT_WORKLOADS_PER_GROUP = 6

#: Paper reference points for Figure 7(a): utilization factor separating the
#: fully-featured architecture ⑥ from each step, per workload group.
PAPER_FIG7A_FINAL_OVER_STEP = {
    "gemm": {"1_baseline": 2.70, "2_prefetch": 1.20, "6_full": 1.00},
    "transposed_gemm": {"1_baseline": 2.86, "2_prefetch": 1.41, "6_full": 1.00},
    "convolution": {"1_baseline": 2.36, "2_prefetch": 1.42, "6_full": 1.00},
}

#: Paper reference: ⑥ reaches 100% on GeMM groups, 92.03% average on conv.
PAPER_FIG7A_FINAL_UTILIZATION = {
    "gemm": 1.00,
    "transposed_gemm": 1.00,
    "convolution": 0.9203,
}

#: Paper reference points for Figure 7(b): the largest reductions quoted.
PAPER_FIG7B_REDUCTIONS = {
    "transposer_on_transposed_gemm": 0.1586,
    "broadcaster_up_to": 0.1458,
    "overall_up_to": 0.2115,
}


def full_suite_requested(full: Optional[bool]) -> bool:
    if full is not None:
        return full
    from ..config import get_config

    return get_config().full_suite


def run(
    workloads_per_group: Optional[int] = None,
    full: Optional[bool] = None,
    design: Optional[AcceleratorSystemDesign] = None,
    seed: int = 0,
    simulator: Optional[Simulator] = None,
    engine: str = DEFAULT_ENGINE,
) -> Dict[str, object]:
    """Run the ablation sweep and return the Figure 7 summaries.

    ``simulator`` routes every cycle simulation through a shared
    :class:`~repro.runtime.simulator.Simulator` — pass one with a result
    cache and/or worker pool to make repeated runs incremental and parallel.
    ``engine`` selects the simulation engine (``"event"`` / ``"lockstep"``).
    """
    use_full = full_suite_requested(full)
    if workloads_per_group is None:
        workloads_per_group = None if use_full else DEFAULT_WORKLOADS_PER_GROUP
    study = AblationStudy(design=design, seed=seed, simulator=simulator, engine=engine)
    results: AblationResults = study.run(
        suite=synthetic_suite(), workloads_per_group=workloads_per_group
    )
    mean_util = {
        group.value: by_step
        for group, by_step in results.mean_utilization().items()
    }
    distributions = {
        group.value: {step: stats.as_dict() for step, stats in by_step.items()}
        for group, by_step in results.utilization_distribution().items()
    }
    normalized_accesses = {
        group.value: by_step
        for group, by_step in results.normalized_access_counts().items()
    }
    speedups = {
        group.value: by_step
        for group, by_step in results.speedup_over_baseline().items()
    }
    return {
        "workloads_per_group": workloads_per_group,
        "full_suite": use_full,
        "num_simulations": len(results.entries),
        "mean_utilization": mean_util,
        "utilization_distribution": distributions,
        "normalized_access_counts": normalized_accesses,
        "speedup_over_baseline": speedups,
        "max_speedup": results.max_speedup(),
        "max_access_reduction": results.max_access_reduction(),
        "paper_reference": {
            "final_over_step": PAPER_FIG7A_FINAL_OVER_STEP,
            "final_utilization": PAPER_FIG7A_FINAL_UTILIZATION,
            "access_reductions": PAPER_FIG7B_REDUCTIONS,
        },
    }


def report(results: Dict[str, object]) -> str:
    sections = []
    label = {step: STEP_LABELS.get(step, step) for step in STEP_LABELS}

    mean_util = {
        group: {label[step]: value for step, value in by_step.items()}
        for group, by_step in results["mean_utilization"].items()
    }
    sections.append(
        format_comparison(
            "Figure 7(a): average GeMM-core utilization per architecture",
            mean_util,
        )
    )

    accesses = {
        group: {label[step]: value for step, value in by_step.items()}
        for group, by_step in results["normalized_access_counts"].items()
    }
    sections.append(
        format_comparison(
            "Figure 7(b): data access counts normalized to the baseline (1)",
            accesses,
        )
    )

    speedups = {
        group: {label[step]: value for step, value in by_step.items()}
        for group, by_step in results["speedup_over_baseline"].items()
    }
    sections.append(
        format_comparison("Speedup of each architecture over the baseline", speedups)
    )

    dist_rows = []
    for group, by_step in results["utilization_distribution"].items():
        for step, stats in by_step.items():
            dist_rows.append(
                [
                    group,
                    label[step],
                    stats["min"],
                    stats["q1"],
                    stats["median"],
                    stats["q3"],
                    stats["max"],
                ]
            )
    sections.append(
        format_table(
            ["group", "architecture", "min", "q1", "median", "q3", "max"],
            dist_rows,
            title="Figure 7(a): utilization distribution (box-plot statistics)",
            float_format="{:.3f}",
        )
    )

    sections.append(
        f"max speedup (6) vs (1): {results['max_speedup']:.2f}x "
        f"(paper: up to 2.89x); "
        f"max access reduction: {100 * results['max_access_reduction']:.2f}% "
        f"(paper: up to 21.15%)"
    )
    sections.append(
        f"simulations: {results['num_simulations']} "
        f"({'full suite' if results['full_suite'] else 'stratified subset'})"
    )
    return "\n\n".join(sections)


def main() -> str:
    text = report(run())
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
