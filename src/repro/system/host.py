"""Host processor model: CSR programming and kernel launch sequencing.

The paper's evaluation system is controlled by a small RISC-V core whose only
duties in the reported experiments are to configure the DataMaestros and
accelerators through CSR writes, start the kernel, and wait for completion.
:class:`HostProcessor` reproduces that driver role: it takes the CSR write
lists emitted by the compiler, decodes them through the same
register-file layout a real driver would use, and programs the streaming
engines.  Instruction-level fidelity of the host is irrelevant to the
reported numbers (see DESIGN.md, substitution table).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.csr import decode_runtime_config
from ..core.params import FeatureSet, StreamerRuntimeConfig
from ..core.streamer import DataMaestro
from ..system.design import AcceleratorSystemDesign


class HostProcessor:
    """CSR-level driver for the DataMaestro evaluation system."""

    def __init__(self, design: AcceleratorSystemDesign) -> None:
        self.design = design
        self.csr_images: Dict[str, Dict[int, int]] = {}
        self.csr_writes_issued = 0

    # ------------------------------------------------------------------
    def write_csrs(self, port: str, writes: List[Tuple[int, int]]) -> None:
        """Apply a list of (offset, value) CSR writes for one port."""
        image = self.csr_images.setdefault(port, {})
        for offset, value in writes:
            image[offset] = int(value)
            self.csr_writes_issued += 1

    def decoded_config(self, port: str) -> StreamerRuntimeConfig:
        """Decode the currently programmed register image of one port."""
        if port not in self.csr_images:
            raise KeyError(f"port {port!r} has not been programmed")
        return decode_runtime_config(
            self.design.streamer(port),
            self.csr_images[port],
            list(self.design.group_size_options()),
        )

    def program_streamer(
        self,
        streamer: DataMaestro,
        writes: List[Tuple[int, int]],
        features: FeatureSet,
    ) -> StreamerRuntimeConfig:
        """Write CSRs and launch-configure one DataMaestro."""
        port = streamer.name
        self.write_csrs(port, writes)
        runtime = self.decoded_config(port)
        streamer.configure(
            runtime, prefetch_enabled=features.fine_grained_prefetch
        )
        return runtime

    def clear(self) -> None:
        """Forget all programmed register images (between kernels)."""
        self.csr_images.clear()

    def statistics(self) -> dict:
        return {
            "csr_writes_issued": self.csr_writes_issued,
            "ports_programmed": len(self.csr_images),
        }
