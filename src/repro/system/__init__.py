"""Evaluation-system models: design, host, DMA and the executable system."""

from .design import (
    AcceleratorSystemDesign,
    PORT_NAMES,
    datamaestro_evaluation_system,
    validate_port_widths,
)
from .dma import Dma
from .host import HostProcessor
from .system import AcceleratorSystem

__all__ = [
    "AcceleratorSystemDesign",
    "PORT_NAMES",
    "datamaestro_evaluation_system",
    "validate_port_widths",
    "Dma",
    "HostProcessor",
    "AcceleratorSystem",
]
