"""Design-time description of the DataMaestro evaluation system (Fig. 6).

The paper's evaluation platform couples five DataMaestros (ports A–E) with a
Tensor-Core-like GeMM accelerator, a quantization accelerator, a 128 KiB
multi-banked scratchpad and a RISC-V host.  This module captures that
platform as a plain data object (:class:`AcceleratorSystemDesign`) consumed
by both the compiler (to generate runtime configurations) and the system
builder (to instantiate the cycle-level model).

Port roles:

========  =====  ======================================================
Port      Mode   Stream
========  =====  ======================================================
``A``     read   left operand (GeMM A tiles / implicitly-im2col-ed input)
``B``     read   right operand (GeMM B tiles / convolution weights)
``C``     read   accumulator initialisation (bias / partial sums)
``D``     write  int32 results back to memory
``E``     write  int8 quantized results (output of the quantizer)
========  =====  ======================================================

The design-time parameters follow the paper's Figure 6 with two documented
deviations (see DESIGN.md): the scratchpad is organised as 64 × 64-bit banks
(128 KiB total) instead of the paper's much finer banking, and ports B–E are
instantiated with enough temporal dimensions to express the convolution
weight/output walks directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..core.params import (
    ExtensionSpec,
    MemoryDesign,
    StreamerDesign,
    StreamerMode,
    validate_streamer_designs,
)

#: Canonical port names in the evaluation system.
PORT_NAMES = ("A", "B", "C", "D", "E")


@dataclass(frozen=True)
class AcceleratorSystemDesign:
    """Everything fixed at hardware-generation time for one system."""

    name: str
    memory: MemoryDesign
    streamers: Tuple[StreamerDesign, ...]
    gemm_mu: int = 8
    gemm_nu: int = 8
    gemm_ku: int = 8
    dma_words_per_cycle: int = 8
    clock_frequency_ghz: float = 1.0

    def __post_init__(self) -> None:
        validate_streamer_designs(self.streamers, self.memory)
        if self.gemm_mu <= 0 or self.gemm_nu <= 0 or self.gemm_ku <= 0:
            raise ValueError("GeMM array dimensions must be positive")
        if self.dma_words_per_cycle <= 0:
            raise ValueError("dma_words_per_cycle must be positive")

    # ------------------------------------------------------------------
    @property
    def num_pes(self) -> int:
        return self.gemm_mu * self.gemm_nu * self.gemm_ku

    @property
    def peak_gops(self) -> float:
        """Peak throughput at the design clock (2 ops per MAC)."""
        return 2.0 * self.num_pes * self.clock_frequency_ghz

    def streamer(self, name: str) -> StreamerDesign:
        for design in self.streamers:
            if design.name == name:
                return design
        raise KeyError(f"no streamer named {name!r} in system {self.name!r}")

    def streamer_map(self) -> Dict[str, StreamerDesign]:
        return {design.name: design for design in self.streamers}

    def group_size_options(self) -> Tuple[int, ...]:
        return self.memory.resolved_group_options()


def datamaestro_evaluation_system(
    scratchpad_kib: int = 128,
    num_banks: int = 64,
    gima_group_size: int = 16,
) -> AcceleratorSystemDesign:
    """Build the five-DataMaestro evaluation system of the paper's Fig. 6."""
    memory = MemoryDesign(
        num_banks=num_banks,
        bank_width_bits=64,
        capacity_bytes=scratchpad_kib * 1024,
        group_size_options=(num_banks, gima_group_size, 1),
        read_latency=1,
    )
    streamers = (
        StreamerDesign(
            name="A",
            mode=StreamerMode.READ,
            num_channels=8,
            spatial_bounds=(8,),
            temporal_dims=6,
            bank_width_bits=64,
            address_buffer_depth=8,
            data_buffer_depth=8,
            extensions=(
                ExtensionSpec.make("transposer", rows=8, cols=8, element_bytes=1),
            ),
        ),
        StreamerDesign(
            name="B",
            mode=StreamerMode.READ,
            num_channels=8,
            spatial_bounds=(8,),
            temporal_dims=6,
            bank_width_bits=64,
            address_buffer_depth=8,
            data_buffer_depth=8,
        ),
        StreamerDesign(
            name="C",
            mode=StreamerMode.READ,
            num_channels=32,
            spatial_bounds=(8, 4),
            temporal_dims=4,
            bank_width_bits=64,
            address_buffer_depth=4,
            data_buffer_depth=1,
            extensions=(ExtensionSpec.make("broadcaster", factor=1),),
        ),
        StreamerDesign(
            name="D",
            mode=StreamerMode.WRITE,
            num_channels=32,
            spatial_bounds=(8, 4),
            temporal_dims=4,
            bank_width_bits=64,
            address_buffer_depth=4,
            data_buffer_depth=1,
        ),
        StreamerDesign(
            name="E",
            mode=StreamerMode.WRITE,
            num_channels=8,
            spatial_bounds=(8,),
            temporal_dims=4,
            bank_width_bits=64,
            address_buffer_depth=4,
            data_buffer_depth=1,
        ),
    )
    return AcceleratorSystemDesign(
        name="datamaestro_evaluation_system",
        memory=memory,
        streamers=streamers,
        gemm_mu=8,
        gemm_nu=8,
        gemm_ku=8,
        dma_words_per_cycle=8,
        clock_frequency_ghz=1.0,
    )


def validate_port_widths(design: AcceleratorSystemDesign) -> None:
    """Check that every port's wide word matches the GeMM core tile sizes."""
    expected = {
        "A": design.gemm_mu * design.gemm_ku,
        "B": design.gemm_ku * design.gemm_nu,
        "C": design.gemm_mu * design.gemm_nu * 4,
        "D": design.gemm_mu * design.gemm_nu * 4,
        "E": design.gemm_mu * design.gemm_nu,
    }
    for port, word_bytes in expected.items():
        streamer = design.streamer(port)
        if streamer.word_bytes != word_bytes:
            raise ValueError(
                f"port {port}: streamer word is {streamer.word_bytes} B but the "
                f"{design.gemm_mu}x{design.gemm_nu}x{design.gemm_ku} GeMM core "
                f"needs {word_bytes} B"
            )
