"""DMA model: bulk tensor loads and explicit data-manipulation pre-passes.

The evaluation system's DMA has two roles in the experiments:

* loading the operand tensors into the scratchpad before a kernel launches —
  identical for every architecture configuration, therefore *not* charged to
  the kernel (neither cycles nor word accesses);
* executing the explicit data-manipulation passes (software transpose,
  software im2col, ...) that are required when the corresponding DataMaestro
  feature is disabled — these *are* charged to the kernel, because they are
  precisely the overhead the on-the-fly features eliminate.

Functionally the transformed data is produced by the compiler and loaded via
the scratchpad backdoor; the DMA accounts for the cost.
"""

from __future__ import annotations

from typing import Iterable, List

from ..compiler.programs import PrePass, TensorLoad
from ..memory.subsystem import MemorySubsystem
from ..utils.packing import ceil_div


class Dma:
    """Bulk data mover between external memory and the scratchpad."""

    def __init__(self, memory: MemorySubsystem, words_per_cycle: int = 8) -> None:
        if words_per_cycle <= 0:
            raise ValueError("words_per_cycle must be positive")
        self.memory = memory
        self.words_per_cycle = int(words_per_cycle)
        self.bytes_loaded = 0
        self.load_cycles = 0
        self.prepass_cycles = 0
        self.prepass_reads = 0
        self.prepass_writes = 0

    # ------------------------------------------------------------------
    # Initial tensor loads (uncounted towards kernel cost).
    # ------------------------------------------------------------------
    def load_tensor(self, load: TensorLoad) -> int:
        """Place one tensor image into the scratchpad; return DMA cycles."""
        self.memory.scratchpad.backdoor_write(
            load.base_address, load.data, group_size=load.group_size
        )
        words = ceil_div(load.size_bytes, self.memory.geometry.bank_width_bytes)
        cycles = ceil_div(words, self.words_per_cycle)
        self.bytes_loaded += load.size_bytes
        self.load_cycles += cycles
        return cycles

    def load_tensors(self, loads: Iterable[TensorLoad]) -> int:
        return sum(self.load_tensor(load) for load in loads)

    # ------------------------------------------------------------------
    # Explicit pre-passes (counted towards kernel cost).
    # ------------------------------------------------------------------
    def execute_prepass(self, prepass: PrePass) -> int:
        """Charge one pre-pass to the kernel; return its cycles."""
        self.memory.add_uncounted_accesses(
            reads=prepass.word_reads, writes=prepass.word_writes
        )
        self.prepass_cycles += prepass.cycles
        self.prepass_reads += prepass.word_reads
        self.prepass_writes += prepass.word_writes
        return prepass.cycles

    def execute_prepasses(self, prepasses: Iterable[PrePass]) -> int:
        return sum(self.execute_prepass(prepass) for prepass in prepasses)

    # ------------------------------------------------------------------
    def statistics(self) -> dict:
        return {
            "bytes_loaded": self.bytes_loaded,
            "load_cycles": self.load_cycles,
            "prepass_cycles": self.prepass_cycles,
            "prepass_reads": self.prepass_reads,
            "prepass_writes": self.prepass_writes,
        }
