"""The DataMaestro evaluation system: five streamers + GeMM + quantizer.

:class:`AcceleratorSystem` instantiates the cycle-level models of every
component in the paper's Figure 6 — the multi-banked scratchpad behind an
interleaved crossbar, the five DataMaestros (ports A–E), the Tensor-Core-like
GeMM accelerator, the quantization accelerator, the DMA and the host driver —
and executes compiled :class:`~repro.compiler.programs.KernelProgram` objects
on them.

Per-cycle phase order (one call to :meth:`step`):

1. streamers reset per-cycle state, the memory delivers matured responses and
   every streamer drains them into its FIFOs;
2. the quantizer then the GeMM core fire if their operands are valid and
   their output sinks are ready;
3. every streamer's AGU produces at most one address bundle (gated by the
   prefetch mode);
4. every channel's MIC issues at most one request, and the crossbar grants at
   most one request per bank.

The measured quantities follow the paper's definitions (see DESIGN.md §4):
utilization is ideal compute cycles over kernel cycles (streaming plus any
explicit pre-passes), and data access counts are scratchpad word accesses
during the kernel.

:meth:`run` executes a whole kernel through a simulation engine from
:mod:`repro.engine`: the default event-driven scheduler steps only through
cycles in which the system can change state and bulk-advances over idle
spans, while ``engine="lockstep"`` retains the legacy cycle-by-cycle loop.
Both produce identical results; the system supports the scheduler through
:attr:`last_step_activity`, :meth:`next_event_cycle` and :meth:`advance`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..accelerators.gemm_core import GemmCore
from ..accelerators.quantizer import Quantizer
from ..compiler.programs import KernelProgram
from ..core.streamer import DataMaestro
from ..engine import DEFAULT_ENGINE, get_engine
from ..memory.subsystem import MemorySubsystem
from ..sim.result import DEFAULT_CYCLE_BUDGET, SimulationResult
from ..sim.runner import DEFAULT_PROGRESS_INTERVAL
from .design import (
    AcceleratorSystemDesign,
    PORT_NAMES,
    datamaestro_evaluation_system,
    validate_port_widths,
)
from .dma import Dma
from .host import HostProcessor


class AcceleratorSystem:
    """Executable cycle-level model of the evaluation platform."""

    def __init__(self, design: Optional[AcceleratorSystemDesign] = None) -> None:
        self.design = design or datamaestro_evaluation_system()
        validate_port_widths(self.design)
        self.memory: Optional[MemorySubsystem] = None
        self.streamers: Dict[str, DataMaestro] = {}
        self.gemm_core = GemmCore(
            self.design.gemm_mu, self.design.gemm_nu, self.design.gemm_ku
        )
        self.quantizer = Quantizer(self.design.gemm_mu, self.design.gemm_nu)
        self.dma: Optional[Dma] = None
        self.host = HostProcessor(self.design)
        self._active_ports: List[str] = []
        self._program: Optional[KernelProgram] = None
        self._cycles = 0
        self.last_step_activity = 0
        self.reset()

    # ------------------------------------------------------------------
    # Construction / reset.
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Build fresh memory, streamers and accelerators for a new kernel."""
        geometry = self.design.memory.geometry()
        self.memory = MemorySubsystem(
            geometry, read_latency=self.design.memory.read_latency
        )
        options = self.design.group_size_options()
        self.streamers = {
            name: DataMaestro(self.design.streamer(name), geometry, options)
            for name in PORT_NAMES
        }
        self.gemm_core = GemmCore(
            self.design.gemm_mu, self.design.gemm_nu, self.design.gemm_ku
        )
        self.quantizer = Quantizer(self.design.gemm_mu, self.design.gemm_nu)
        self.dma = Dma(self.memory, self.design.dma_words_per_cycle)
        self.host = HostProcessor(self.design)
        self._active_ports = []
        self._program = None
        self._cycles = 0
        self.last_step_activity = 0
        self._tile_completed = False
        self._steady = None

    # ------------------------------------------------------------------
    # Program loading.
    # ------------------------------------------------------------------
    def load_program(self, program: KernelProgram) -> None:
        """Reset the system, load tensors, run pre-passes and program CSRs."""
        self.reset()
        assert self.memory is not None and self.dma is not None
        self._program = program

        # 1. Initial tensor loads (identical for every configuration, not
        #    charged to the kernel).
        self.dma.load_tensors(program.tensor_loads)

        # 2. Explicit data-manipulation pre-passes required by disabled
        #    features (charged to the kernel).
        self.dma.execute_prepasses(program.prepasses)

        # 3. Program every used DataMaestro through its CSR interface.
        features = program.features
        self._active_ports = program.active_ports()
        for port in self._active_ports:
            self.host.program_streamer(
                self.streamers[port], program.csr_writes[port], features
            )

        # 4. Bind and configure the accelerators.
        c_stream = self.streamers["C"] if "C" in program.streamer_configs else None
        if program.uses_quantizer:
            sink = self.quantizer
            self.quantizer.bind(self.streamers["E"])
            self.quantizer.configure(program.quant_config)
        else:
            sink = self.streamers["D"]
        self.gemm_core.bind(
            a_stream=self.streamers["A"],
            b_stream=self.streamers["B"],
            output_sink=sink,
            c_stream=c_stream,
        )
        self.gemm_core.configure(program.job)

    # ------------------------------------------------------------------
    # Cycle behaviour.
    # ------------------------------------------------------------------
    def _active_streamers(self) -> List[DataMaestro]:
        return [self.streamers[port] for port in self._active_ports]

    @property
    def finished(self) -> bool:
        """True once the kernel's compute and all its streams have drained."""
        if self._program is None:
            return True
        if not self.gemm_core.done:
            return False
        if self._program.uses_quantizer and self.quantizer.busy:
            return False
        return all(streamer.done for streamer in self._active_streamers())

    def step(self) -> bool:
        """Advance the whole system by one clock cycle.

        Tracks the number of state-changing events the cycle performed in
        :attr:`last_step_activity` (responses delivered/collected, quantizer
        and MAC firings, address bundles, requests issued, crossbar grants).
        A step with zero activity is a fixpoint: nothing can change until a
        matured memory response arrives — the event engine exploits this.
        Drained components (``done`` streamers) are skipped outright; their
        per-cycle methods are provably no-ops.
        """
        if self._program is None:
            return False
        assert self.memory is not None
        streamers = [s for s in self._active_streamers() if not s.done]
        activity = 0

        # Phase 1: responses.
        for streamer in streamers:
            streamer.begin_cycle()
        activity += self.memory.deliver()
        for streamer in streamers:
            activity += streamer.collect_responses(self.memory)

        # Phase 2: accelerators (quantizer first so it drains the previous
        # cycle's tile before the core produces a new one).
        if self._program.uses_quantizer and self.quantizer.step():
            activity += 1
        tile_before = self.gemm_core._tile_index
        if self.gemm_core.step():
            activity += 1

        # Phase 3: address generation.
        for streamer in streamers:
            if streamer.generate_addresses():
                activity += 1

        # Phase 4: request issue and crossbar arbitration.
        for streamer in streamers:
            activity += streamer.issue_requests(self.memory)
        activity += self.memory.step()

        self._cycles += 1
        self.last_step_activity = activity
        self._tile_completed = self.gemm_core._tile_index != tile_before
        return not self.finished

    # ------------------------------------------------------------------
    # Next-event protocol (see repro.engine).
    # ------------------------------------------------------------------
    def next_event_cycle(self) -> Optional[int]:
        """Earliest future cycle at which any component can act.

        At a zero-activity fixpoint every streamer, the GeMM core and the
        quantizer are combinationally blocked, so the only *timed* event
        source is the memory subsystem's in-flight responses; the component
        queries are kept for protocol completeness and as a safety net.
        ``None`` means nothing will ever happen again (deadlock).
        """
        if self._program is None:
            return None
        assert self.memory is not None
        now = self._cycles
        earliest = self.memory.next_event_cycle()
        for streamer in self._active_streamers():
            if streamer.done:
                continue
            event = streamer.next_event_cycle(now)
            if event is not None and (earliest is None or event < earliest):
                earliest = event
        if self._program.uses_quantizer:
            event = self.quantizer.next_event_cycle(now)
            if event is not None and (earliest is None or event < earliest):
                earliest = event
        event = self.gemm_core.next_event_cycle(now)
        if event is not None and (earliest is None or event < earliest):
            earliest = event
        return earliest

    def advance(self, cycles: int) -> None:
        """Bulk-apply ``cycles`` provably inactive cycles.

        Replicates exactly what lockstep stepping across the span would have
        recorded: the clock moves, and every stalled component accumulates
        its per-cycle stall counters (GeMM stalls, quantizer stalls,
        per-channel credit stalls).  No data moves — the caller guarantees
        the span contains no activity.
        """
        if self._program is None or cycles <= 0:
            return
        assert self.memory is not None
        self._cycles += cycles
        self.memory.advance(cycles)
        for streamer in self._active_streamers():
            streamer.advance(cycles)
        if self._program.uses_quantizer:
            self.quantizer.advance(cycles)
        self.gemm_core.advance(cycles)

    # ------------------------------------------------------------------
    # Macro-step protocol (see repro.engine.steady).
    # ------------------------------------------------------------------
    def steady_span(self, limit: int) -> int:
        """Cycles the system can bulk-advance from a steady-state boundary.

        Returns ``0`` except right after a step that completed an output
        tile whose surrounding schedule is a verified periodic steady state
        (see :mod:`repro.engine.steady`).  A non-zero return stages a plan;
        the caller must follow up with :meth:`advance_active` for exactly
        that many cycles.  ``limit`` caps the span (budget remaining).
        """
        if not self._tile_completed or self._program is None:
            return 0
        if self._steady is None:
            # Created on first use so lockstep-only runs never pay for the
            # planner (repro.engine.steady) at all.
            from ..engine.steady import SteadySpanPlanner

            self._steady = SteadySpanPlanner(self)
        return self._steady.boundary(limit)

    def advance_active(self, cycles: int) -> None:
        """Bulk-apply the steady span staged by :meth:`steady_span`."""
        assert self._steady is not None
        self._steady.advance_active(cycles)

    def steady_stats(self) -> Dict[str, object]:
        """Observability counters of the macro-step fast path."""
        if self._steady is None:
            return {}
        return self._steady.stats.as_dict()

    # ------------------------------------------------------------------
    # Whole-kernel execution.
    # ------------------------------------------------------------------
    def run(
        self,
        program: KernelProgram,
        max_cycles: int = DEFAULT_CYCLE_BUDGET,
        engine: str = DEFAULT_ENGINE,
        progress_callback=None,
        progress_interval: int = DEFAULT_PROGRESS_INTERVAL,
    ) -> SimulationResult:
        """Execute a compiled kernel and return its simulation result.

        ``engine`` selects the simulation loop: ``"event"`` (the default
        next-event scheduler) or ``"lockstep"`` (the legacy per-cycle loop).
        A pre-built :class:`~repro.engine.base.SimulationEngine` instance is
        also accepted (the engine benchmark uses this to time the event
        scheduler with macro-stepping disabled).  All variants produce
        identical results; see ``docs/ENGINE.md``.

        ``progress_callback`` (called with the current cycle count roughly
        every ``progress_interval`` simulated cycles) taps the engines'
        cooperative yield points — the simulation service streams these as
        ``progress`` events (``docs/SERVE.md``); bulk advances that cross
        an interval boundary report once with the post-jump count.
        """
        self.load_program(program)
        assert self.memory is not None and self.dma is not None
        driver = get_engine(engine) if isinstance(engine, str) else engine
        driver.drive(
            self,
            max_cycles=max_cycles,
            describe=f"kernel {program.name!r}",
            detail=self.deadlock_report,
            progress_callback=progress_callback,
            progress_interval=progress_interval,
        )

        streamer_stats = {
            port: self.streamers[port].statistics(self.memory)
            for port in self._active_ports
        }
        counters = {
            "gemm_mac_cycles": self.gemm_core.mac_cycles,
            "gemm_stall_cycles": self.gemm_core.stall_cycles,
            "quantizer_tiles": self.quantizer.tiles_processed,
            "csr_writes": self.host.statistics()["csr_writes_issued"],
            "dma_load_cycles": self.dma.load_cycles,
        }
        # Imported here (not at module level) to keep the compiler <-> system
        # import graph acyclic: the mapper only needs the system *design*.
        from ..compiler.mapper import extract_outputs

        outputs = extract_outputs(program, self.memory)
        result = SimulationResult(
            workload_name=program.name,
            ideal_compute_cycles=program.ideal_compute_cycles,
            streaming_cycles=self._cycles,
            prepass_cycles=program.prepass_cycles,
            memory_reads=self.memory.total_reads,
            memory_writes=self.memory.total_writes,
            bank_conflicts=self.memory.total_conflicts,
            streamer_stats=streamer_stats,
            counters=counters,
            outputs=outputs,
            metadata={
                "features": program.features.as_dict(),
                "workload_group": program.workload.group.value,
                "tiles": (
                    program.job.tiles_m,
                    program.job.tiles_n,
                    program.job.tiles_k,
                ),
                "active_ports": list(self._active_ports),
                "engine": engine if isinstance(engine, str) else driver.name,
            },
        )
        return result

    # ------------------------------------------------------------------
    def deadlock_report(self) -> str:
        """Short description of what is still pending (for error messages)."""
        parts = [f"core tiles done={self.gemm_core.statistics()['tiles_completed']}"]
        for port in self._active_ports:
            streamer = self.streamers[port]
            parts.append(
                f"{port}: bundles={streamer.bundles_generated}/"
                f"{streamer.agu.total_bundles if streamer.agu else 0} "
                f"words={streamer.words_streamed} busy={streamer.busy}"
            )
        return "; ".join(parts)

    #: Backwards-compatible alias (pre-engine name).
    _deadlock_report = deadlock_report

    def verify_outputs(self, result: SimulationResult) -> bool:
        """Compare the simulated outputs against the program's numpy oracle."""
        if self._program is None:
            raise RuntimeError("no program has been run")
        import numpy as np

        for name, expected in self._program.expected_outputs.items():
            actual = result.outputs.get(name)
            if actual is None or not np.array_equal(actual, expected):
                return False
        return True
