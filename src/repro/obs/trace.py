"""Per-job tracing: span timelines exported as Chrome trace-event JSON.

A :class:`TraceRecorder` collects timestamped events keyed by *track* (the
job hash for service lifecycles, the kernel description for engine runs)
and exports them in the Chrome trace-event format — ``{"traceEvents":
[...]}`` with async begin/end pairs (``ph: "b"`` / ``"e"``) matched by
``cat`` + ``id`` — directly loadable in Perfetto (https://ui.perfetto.dev)
or ``chrome://tracing``.

The expected span timeline of one submission::

    job ─┬─ queued ── executing(engine: macro_jump*, idle_jump*) ── write_back
         ├─ coalesced / cache_probe(cache_hit) instants
         └─ shard_routed / dispatched           (cluster mode)

Tracing is **disabled by default** and costs one module-global ``None``
check per hook when off (:func:`get_tracer` — the benchmark suite bounds
this overhead at <5% of the serve throughput run).  Enable it with
``repro <cmd> --trace out.json`` or ``REPRO_TRACE=out.json``; the hooks
live in :class:`~repro.serve.events.EventBus` (one per service event),
:class:`~repro.cluster.service.ClusterService` (accept/route/dispatch/
settle), the service's cache write-back, :class:`~repro.serve.queue
.FairQueue` depth changes (counter events) and
:class:`~repro.engine.event.EventDrivenEngine` (engine spans + macro-jump
instants).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "get_tracer",
    "install_tracer",
    "uninstall_tracer",
]


@dataclass(frozen=True)
class TraceEvent:
    """One Chrome trace event (async span edge, instant, or counter)."""

    name: str
    ph: str  # "b" begin, "e" end, "n" instant, "C" counter
    ts_us: float
    cat: str = "job"
    track: str = ""
    args: Dict[str, object] = field(default_factory=dict)

    def chrome(self) -> Dict[str, object]:
        event: Dict[str, object] = {
            "name": self.name,
            "ph": self.ph,
            "ts": self.ts_us,
            "pid": 1,
            "tid": 1,
            "cat": self.cat,
        }
        if self.ph in ("b", "e", "n"):
            event["id"] = self.track[:16] or "0"
        if self.args:
            event["args"] = dict(self.args)
        return event


class TraceRecorder:
    """Collects trace events; thread-safe, append-only, export-at-end.

    Service hooks feed it from the event-loop thread, engine hooks from
    executor threads, cluster hooks from reader threads — every append
    takes the lock.  ``begin``/``end`` are idempotent per (track, name):
    a duplicate begin (a coalesced submission re-announcing the job) is
    dropped, an end without a begin is recorded as an instant so no data
    is silently lost.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: List[TraceEvent] = []
        self._open: Dict[Tuple[str, str, str], int] = {}
        self._t0 = time.perf_counter()

    # ------------------------------------------------------------------
    def _now_us(self) -> float:
        return (time.perf_counter() - self._t0) * 1e6

    def _append(self, event: TraceEvent) -> None:
        with self._lock:
            self._events.append(event)

    def begin(self, name: str, track: str, cat: str = "job", **args: object) -> None:
        key = (cat, track, name)
        with self._lock:
            if self._open.get(key, 0) > 0:
                return  # coalesced duplicate: the span is already open
            self._open[key] = 1
            self._events.append(
                TraceEvent(name, "b", self._now_us(), cat, track, dict(args))
            )

    def end(self, name: str, track: str, cat: str = "job", **args: object) -> None:
        key = (cat, track, name)
        with self._lock:
            if self._open.get(key, 0) > 0:
                self._open[key] = 0
                ph = "e"
            else:
                ph = "n"  # end without begin: keep it visible as an instant
            self._events.append(
                TraceEvent(name, ph, self._now_us(), cat, track, dict(args))
            )

    def maybe_end(self, name: str, track: str, cat: str = "job", **args: object) -> None:
        """End the span only if it is open (no instant noise otherwise)."""
        key = (cat, track, name)
        with self._lock:
            if self._open.get(key, 0) <= 0:
                return
            self._open[key] = 0
            self._events.append(
                TraceEvent(name, "e", self._now_us(), cat, track, dict(args))
            )

    def instant(self, name: str, track: str, cat: str = "job", **args: object) -> None:
        self._append(TraceEvent(name, "n", self._now_us(), cat, track, dict(args)))

    def counter(self, name: str, values: Dict[str, Union[int, float]]) -> None:
        self._append(TraceEvent(name, "C", self._now_us(), "counter", "", dict(values)))

    # ------------------------------------------------------------------
    def record_service_event(self, event) -> None:
        """Map one :class:`~repro.serve.events.ServiceEvent` onto spans.

        This single hook (called from ``EventBus.publish``) reconstructs
        the full thread-service lifecycle; the cluster and engine layers
        add their own spans directly.
        """
        kind = event.kind
        key = event.job_hash
        args = {"workload": event.workload, "client": event.client}
        if kind == "submitted":
            self.begin("job", key, **args)
        elif kind == "queued":
            self.begin("queued", key, **args)
        elif kind == "started":
            self.maybe_end("queued", key)
            self.begin("executing", key, **args)
        elif kind == "progress":
            self.instant("progress", key, cycles=event.cycles)
        elif kind == "coalesced":
            self.instant("coalesced", key, **args)
        elif kind == "cache_hit":
            self.instant("cache_hit", key, **args)
        elif kind == "rejected":
            self.instant("rejected", key, **args)
            self.end("job", key, outcome="rejected")
        elif kind == "finished":
            self.maybe_end("executing", key)
            self.end("job", key, outcome="finished", waiters=event.waiters)
        elif kind == "failed":
            self.maybe_end("executing", key)
            self.end("job", key, outcome="failed", error=event.error)
        elif kind == "cancelled":
            self.maybe_end("queued", key)
            self.end("job", key, outcome="cancelled")

    # ------------------------------------------------------------------
    def events(self) -> List[TraceEvent]:
        with self._lock:
            return list(self._events)

    def spans(self, track: str, cat: str = "job") -> List[str]:
        """Names of completed (begin+end) spans on one track, begin order."""
        begun: List[str] = []
        ended = set()
        for event in self.events():
            if event.track != track or event.cat != cat:
                continue
            if event.ph == "b":
                begun.append(event.name)
            elif event.ph == "e":
                ended.add(event.name)
        return [name for name in begun if name in ended]

    def chrome_events(self) -> List[Dict[str, object]]:
        return [event.chrome() for event in self.events()]

    def export(self, path: Union[str, Path]) -> int:
        """Write the Chrome trace JSON; returns the event count."""
        events = self.chrome_events()
        document = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs.trace"},
        }
        Path(path).write_text(json.dumps(document) + "\n", encoding="utf-8")
        return len(events)


# ----------------------------------------------------------------------
# The process-wide tracer hook point.
# ----------------------------------------------------------------------
_TRACER: Optional[TraceRecorder] = None


def get_tracer() -> Optional[TraceRecorder]:
    """The installed tracer, or ``None`` (the common, near-free case)."""
    return _TRACER


def install_tracer(recorder: Optional[TraceRecorder] = None) -> TraceRecorder:
    """Install ``recorder`` (or a fresh one) as the process tracer."""
    global _TRACER
    if recorder is None:
        recorder = TraceRecorder()
    _TRACER = recorder
    return recorder


def uninstall_tracer() -> Optional[TraceRecorder]:
    """Remove and return the installed tracer."""
    global _TRACER
    recorder = _TRACER
    _TRACER = None
    return recorder
