"""The single-file live ops dashboard served at ``/`` by the exporter.

Plain HTML + vanilla JavaScript, zero dependencies: the page polls
``/snapshot`` every two seconds and renders queue depth, coalescing /
cache hit rates, per-shard (or per-worker) executed counts and latency
percentiles.  It handles both snapshot shapes — the flat thread-service
dict and the cluster dict with nested ``stats`` and ``shards`` — with the
same field-picking logic the CLI stats line uses.

Keeping the page a Python string (rather than a data file) keeps the
exporter import-only deployable: ``python -m repro.cli serve …
--metrics-port 0`` works from a zipapp or a bare checkout alike.
"""

from __future__ import annotations

__all__ = ["DASHBOARD_HTML"]

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro ops dashboard</title>
<style>
  :root { color-scheme: dark; }
  body { font-family: 'Segoe UI', system-ui, sans-serif; margin: 0;
         background: #11161d; color: #dbe4ee; }
  header { padding: 14px 22px; background: #171e27;
           border-bottom: 1px solid #2b3644; display: flex;
           justify-content: space-between; align-items: baseline; }
  header h1 { font-size: 17px; margin: 0; font-weight: 600; }
  header .sub { color: #7d89a6; font-size: 12px; }
  main { padding: 18px 22px; max-width: 1100px; margin: 0 auto; }
  .tiles { display: grid; grid-template-columns: repeat(auto-fit, minmax(150px, 1fr));
           gap: 12px; margin-bottom: 18px; }
  .tile { background: #171e27; border: 1px solid #263040; border-radius: 8px;
          padding: 12px 14px; }
  .tile .label { font-size: 11px; text-transform: uppercase;
                 letter-spacing: .06em; color: #7d89a6; }
  .tile .value { font-size: 26px; font-weight: 650; margin-top: 4px;
                 font-variant-numeric: tabular-nums; }
  .tile .hint { font-size: 11px; color: #55617a; margin-top: 2px; }
  h2 { font-size: 13px; text-transform: uppercase; letter-spacing: .06em;
       color: #7d89a6; margin: 20px 0 8px; }
  table { border-collapse: collapse; width: 100%; font-size: 13px; }
  th, td { text-align: left; padding: 5px 10px; border-bottom: 1px solid #222c3a;
           font-variant-numeric: tabular-nums; }
  th { color: #7d89a6; font-weight: 500; }
  .bar { background: #223049; height: 10px; border-radius: 5px; overflow: hidden; }
  .bar > div { background: #4f9cf9; height: 100%; }
  .dead { color: #f97066; }
  .ok { color: #5dd4a3; }
  #error { color: #f97066; font-size: 12px; padding: 4px 0; min-height: 18px; }
  a { color: #4f9cf9; }
  footer { color: #55617a; font-size: 11px; padding: 14px 22px; }
</style>
</head>
<body>
<header>
  <h1>repro ops dashboard</h1>
  <span class="sub">polls <a href="/snapshot">/snapshot</a> every 2s &middot;
    <a href="/metrics">/metrics</a> &middot; <a href="/config">/config</a></span>
</header>
<main>
  <div id="error"></div>
  <div class="tiles" id="tiles"></div>
  <h2>Latency</h2>
  <table id="latency"><tbody></tbody></table>
  <h2 id="workers-title">Executed per shard</h2>
  <table id="workers"><tbody></tbody></table>
</main>
<footer>repro.obs &mdash; stdlib-only telemetry exporter</footer>
<script>
"use strict";
const fmtRate = v => (100 * (v || 0)).toFixed(0) + "%";
const fmtMs = v => ((v || 0) * 1000).toFixed(1) + " ms";

function tile(label, value, hint) {
  return `<div class="tile"><div class="label">${label}</div>` +
         `<div class="value">${value}</div>` +
         (hint ? `<div class="hint">${hint}</div>` : "") + `</div>`;
}

function render(snap) {
  const stats = snap.stats || snap;           // cluster nests its counters
  const tiles = [
    tile("queue depth", snap.queue_depth ?? 0),
    tile("in flight", snap.inflight ?? 0),
    tile("submitted", stats.submitted ?? 0),
    tile("executed", stats.executed ?? 0),
    tile("coalescing", fmtRate(stats.coalescing_hit_rate),
         (stats.coalesced ?? 0) + " coalesced"),
    tile("cache hits", fmtRate(stats.cache_hit_rate),
         (stats.cache_hits ?? 0) + " hits"),
  ];
  if (snap.shards) {
    const alive = snap.shards.filter(s => s.alive).length;
    tiles.push(tile("shards", alive + "/" + (snap.shard_count ?? 0),
                    (stats.restarts ?? 0) + " restarts"));
  }
  if (stats.failed) tiles.push(tile("failed", stats.failed));
  document.getElementById("tiles").innerHTML = tiles.join("");

  // Latency: merge per-shard histograms' headline stats, or take the
  // thread service's directly.
  let latencyRows = [];
  const latencySources = snap.shards
    ? snap.shards.map(s => s.snapshot && s.snapshot.latency).filter(Boolean)
    : (snap.latency ? [snap.latency] : []);
  if (latencySources.length === 1) {
    const l = latencySources[0];
    latencyRows = [["count", l.count], ["mean", fmtMs(l.mean_seconds)],
                   ["p50", fmtMs(l.p50_seconds)], ["p90", fmtMs(l.p90_seconds)],
                   ["p99", fmtMs(l.p99_seconds)]];
  } else if (latencySources.length > 1) {
    latencySources.forEach((l, i) => latencyRows.push(
      [`shard ${snap.shards[i].shard}`, `n=${l.count} p50=${fmtMs(l.p50_seconds)} ` +
       `p99=${fmtMs(l.p99_seconds)}`]));
  }
  document.querySelector("#latency tbody").innerHTML = latencyRows
    .map(r => `<tr><th>${r[0]}</th><td>${r[1]}</td></tr>`).join("") ||
    "<tr><td>no completions yet</td></tr>";

  // Executed per shard (cluster) or per worker slot (thread service).
  let rows = [];
  if (snap.shards) {
    document.getElementById("workers-title").textContent = "Executed per shard";
    const max = Math.max(1, ...snap.shards.map(
      s => (s.snapshot && s.snapshot.executed) || 0));
    rows = snap.shards.map(s => {
      const n = (s.snapshot && s.snapshot.executed) || 0;
      const state = s.alive ? `<span class="ok">alive</span>`
                            : `<span class="dead">down</span>`;
      return `<tr><th>shard ${s.shard}</th><td>${state}</td>` +
             `<td>pid ${s.pid ?? "-"}</td><td>${n}</td>` +
             `<td style="width:40%"><div class="bar">` +
             `<div style="width:${(100 * n / max).toFixed(0)}%"></div></div></td></tr>`;
    });
  } else {
    document.getElementById("workers-title").textContent = "Executed per worker";
    const per = snap.per_worker_executed || {};
    const max = Math.max(1, ...Object.values(per));
    rows = Object.keys(per).sort().map(w =>
      `<tr><th>worker ${w}</th><td></td><td></td><td>${per[w]}</td>` +
      `<td style="width:40%"><div class="bar">` +
      `<div style="width:${(100 * per[w] / max).toFixed(0)}%"></div></div></td></tr>`);
  }
  document.querySelector("#workers tbody").innerHTML = rows.join("") ||
    "<tr><td>nothing executed yet</td></tr>";
}

async function poll() {
  try {
    const response = await fetch("/snapshot", {cache: "no-store"});
    if (!response.ok) throw new Error("HTTP " + response.status);
    render(await response.json());
    document.getElementById("error").textContent = "";
  } catch (err) {
    document.getElementById("error").textContent =
      "snapshot unavailable: " + err.message;
  }
}
poll();
setInterval(poll, 2000);
</script>
</body>
</html>
"""
