"""Thread-safe metrics primitives and the registry they live in.

This is the substrate of the ``repro.obs`` telemetry layer: three
Prometheus-shaped primitives — :class:`Counter` (monotonic),
:class:`Gauge` (instantaneous, optionally callback-backed) and
:class:`Histogram` (fixed cumulative bounds with in-bucket quantile
interpolation) — plus the :class:`MetricsRegistry` that names, stores and
collects them.

Two registry scopes exist by design:

* **per-service registries** — every
  :class:`~repro.serve.service.SimulationService` /
  :class:`~repro.cluster.service.ClusterService` owns its own registry
  (its :class:`ServiceStats` counters are backed by it), so parallel
  services in one process (the test suite runs dozens) never merge
  counts;
* **the process-wide registry** (:func:`get_registry`) — build info,
  engine counters, exploration counters and result-cache callbacks;
  anything that is genuinely one-per-process registers here and the HTTP
  exporter unions it with the live service snapshot.

Every mutation takes the metric's lock; ``observe``/``inc`` are a few
hundred nanoseconds, cheap enough for the service's completion path.
The text renderer lives in :mod:`repro.obs.exposition`.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BOUNDS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Sample",
    "get_registry",
]

#: Legal metric names (Prometheus exposition grammar).
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Upper bucket bounds (seconds) shared by every latency histogram in the
#: package; roughly logarithmic from 1 ms to 30 s, which brackets every
#: workload the repo's cycle engines simulate.  The implicit final bucket
#: is +inf.
DEFAULT_LATENCY_BOUNDS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


@dataclass(frozen=True)
class Sample:
    """One exposition sample: ``<family><suffix>{labels} <value>``."""

    suffix: str = ""
    labels: Dict[str, str] = field(default_factory=dict)
    value: Union[int, float] = 0

    def __post_init__(self) -> None:
        # Labels arrive from snapshots with arbitrary value types; pin
        # them to strings once so rendering and tests see one shape.
        object.__setattr__(
            self, "labels", {str(k): str(v) for k, v in self.labels.items()}
        )


@dataclass(frozen=True)
class MetricFamily:
    """One named family with its type, help text and samples."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str = ""
    samples: Tuple[Sample, ...] = ()

    def __post_init__(self) -> None:
        _check_name(self.name)
        if self.kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"unknown metric kind {self.kind!r}")
        object.__setattr__(self, "samples", tuple(self.samples))


class Counter:
    """Monotonically increasing count (int-preserving, thread-safe)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self._lock = threading.Lock()
        self._value: Union[int, float] = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Union[int, float]:
        return self._value

    def family(self) -> MetricFamily:
        return MetricFamily(
            self.name, self.kind, self.help, (Sample(value=self._value),)
        )

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class Gauge:
    """Instantaneous value; settable, or backed by a callback function."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], Union[int, float]]] = None,
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        self.fn = fn
        self._lock = threading.Lock()
        self._value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> Union[int, float]:
        if self.fn is not None:
            try:
                return self.fn()
            except Exception:  # noqa: BLE001 — a dead callback reads as 0
                return 0
        return self._value

    def family(self) -> MetricFamily:
        return MetricFamily(self.name, self.kind, self.help, (Sample(value=self.value),))

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-bucket histogram (Prometheus-style cumulative bounds).

    ``observe`` is a counter bump — cheap enough for the service's hot
    completion path — and ``quantile`` interpolates within the winning
    bucket, so percentile estimates stay stable without storing samples.

    Edge cases are defined, not artifacts: an empty histogram reports
    ``0.0`` for every quantile, a single sample reports that sample's
    bucket for every quantile (the effective rank is clamped to at least
    one observation, so ``q=0`` can no longer land in an empty leading
    bucket), out-of-range ``q`` raises ``ValueError``, and a histogram
    whose mass sits entirely past the last bound clamps to that bound.
    """

    kind = "histogram"

    def __init__(
        self,
        bounds: Tuple[float, ...] = DEFAULT_LATENCY_BOUNDS,
        name: str = "histogram",
        help: str = "",
    ) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted, got {bounds}")
        self.name = name
        self.help = help
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(bounds) + 1)  # final slot: > bounds[-1]
        self.total_seconds = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.total_seconds += value

    @property
    def mean(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def __eq__(self, other: object) -> bool:
        # Value equality keeps dataclasses holding a histogram comparable.
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self.bounds == other.bounds
            and self.counts == other.counts
            and self.count == other.count
            and self.total_seconds == other.total_seconds
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(count={self.count}, "
            f"mean={self.mean:.6f}s)"
        )

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1) via in-bucket interpolation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        # Clamp the rank to >= 1 observation: q=0 means "the smallest
        # observed value's bucket", never an empty leading bucket's bound.
        rank = max(1.0, q * self.count)
        cumulative = 0
        lower = 0.0
        for index, bound in enumerate(self.bounds):
            previous = cumulative
            cumulative += self.counts[index]
            if cumulative >= rank:
                # counts[index] > 0 here: cumulative just crossed the rank.
                fraction = (rank - previous) / self.counts[index]
                return lower + fraction * (bound - lower)
            lower = bound
        return self.bounds[-1]  # everything landed in the overflow bucket

    def merge_dict(self, summary: Dict[str, object]) -> None:
        """Fold another histogram's :meth:`as_dict` into this one.

        Used by the exporter to merge per-shard latency histograms (all
        shards share the package-wide bounds) into one cluster family;
        a summary with mismatched bucket rows is ignored rather than
        corrupting the aggregate.
        """
        buckets = summary.get("buckets")
        if not isinstance(buckets, list) or len(buckets) != len(self.counts):
            return
        with self._lock:
            for slot, row in enumerate(buckets):
                self.counts[slot] += int(row.get("count", 0))
            self.count += int(summary.get("count", 0))
            sum_seconds = summary.get(
                "sum_seconds",
                float(summary.get("mean_seconds", 0.0)) * int(summary.get("count", 0)),
            )
            self.total_seconds += float(sum_seconds)

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "mean_seconds": self.mean,
            "sum_seconds": self.total_seconds,
            "p50_seconds": self.quantile(0.5),
            "p90_seconds": self.quantile(0.9),
            "p99_seconds": self.quantile(0.99),
            "buckets": [
                {"le": bound, "count": count}
                for bound, count in zip(self.bounds, self.counts)
            ]
            + [{"le": None, "count": self.counts[-1]}],
        }

    def family(self) -> MetricFamily:
        samples: List[Sample] = []
        cumulative = 0
        for bound, count in zip(self.bounds, self.counts):
            cumulative += count
            samples.append(Sample("_bucket", {"le": repr(float(bound))}, cumulative))
        samples.append(Sample("_bucket", {"le": "+Inf"}, self.count))
        samples.append(Sample("_sum", {}, self.total_seconds))
        samples.append(Sample("_count", {}, self.count))
        return MetricFamily(self.name, self.kind, self.help, tuple(samples))


_Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named home of a set of metrics; thread-safe get-or-create.

    ``counter``/``gauge``/``histogram`` return the existing metric when
    the name is already registered (and raise ``TypeError`` when it is
    registered as a different kind) — call sites can re-register
    idempotently instead of coordinating.  ``add_callback`` registers a
    named producer of extra :class:`MetricFamily` rows collected on every
    scrape; re-adding a name replaces the previous callback, keeping
    repeat construction (CLI runs in one process, test fixtures) safe.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: "OrderedDict[str, _Metric]" = OrderedDict()
        self._callbacks: "OrderedDict[str, Callable[[], Iterable[MetricFamily]]]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, kind: str, factory) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {kind}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, "counter", lambda: Counter(name, help))

    def gauge(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], Union[int, float]]] = None,
    ) -> Gauge:
        gauge = self._get_or_create(name, "gauge", lambda: Gauge(name, help, fn))
        if fn is not None and gauge.fn is None:
            gauge.fn = fn
        return gauge

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds: Tuple[float, ...] = DEFAULT_LATENCY_BOUNDS,
    ) -> Histogram:
        return self._get_or_create(
            name, "histogram", lambda: Histogram(bounds, name=name, help=help)
        )

    def register(self, metric: _Metric) -> _Metric:
        """Adopt an externally constructed primitive under its own name."""
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None and existing is not metric:
                raise ValueError(f"metric {metric.name!r} already registered")
            self._metrics[metric.name] = metric
            return metric

    def unregister(self, name: str) -> None:
        with self._lock:
            self._metrics.pop(name, None)
            self._callbacks.pop(name, None)

    def add_callback(
        self, name: str, fn: Callable[[], Iterable[MetricFamily]]
    ) -> None:
        with self._lock:
            self._callbacks[name] = fn

    # ------------------------------------------------------------------
    def collect(self) -> List[MetricFamily]:
        """Every family this registry knows, in registration order."""
        with self._lock:
            metrics = list(self._metrics.values())
            callbacks = list(self._callbacks.values())
        families = [metric.family() for metric in metrics]
        for callback in callbacks:
            try:
                families.extend(callback())
            except Exception:  # noqa: BLE001 — one bad producer must not kill the scrape
                continue
        return families

    def as_dict(self) -> Dict[str, object]:
        """Flat name → value summary (histograms expand to their dict)."""
        with self._lock:
            metrics = list(self._metrics.values())
        summary: Dict[str, object] = {}
        for metric in metrics:
            if isinstance(metric, Histogram):
                summary[metric.name] = metric.as_dict()
            else:
                summary[metric.name] = metric.value
        return summary

    def names(self) -> Sequence[str]:
        with self._lock:
            return list(self._metrics)


# ----------------------------------------------------------------------
# The process-wide registry.
# ----------------------------------------------------------------------
_GLOBAL: Optional[MetricsRegistry] = None
_GLOBAL_LOCK = threading.Lock()


def _build_info_families() -> List[MetricFamily]:
    from .. import __version__

    return [
        MetricFamily(
            "repro_build_info",
            "gauge",
            "Package version of the running process.",
            (Sample(labels={"version": __version__}, value=1),),
        )
    ]


def get_registry() -> MetricsRegistry:
    """The process-wide registry (engine/explore/cache/build-info metrics)."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        if _GLOBAL is None:
            _GLOBAL = MetricsRegistry()
            _GLOBAL.add_callback("repro_build_info", _build_info_families)
        return _GLOBAL
