"""Prometheus text exposition (format 0.0.4) and snapshot mapping.

Two jobs live here:

* :func:`render` — serialize :class:`~repro.obs.metrics.MetricFamily`
  rows into the plain-text exposition format Prometheus scrapes
  (``# HELP`` / ``# TYPE`` headers, one ``name{labels} value`` line per
  sample, histograms as cumulative ``_bucket`` series with a ``+Inf``
  row plus ``_sum``/``_count``);
* :func:`snapshot_families` — map the structured ops snapshots the
  services already produce (:meth:`SimulationService.snapshot` for the
  thread service, :meth:`ClusterService.snapshot` with its per-shard
  pong-frame aggregation) onto metric families.  This is what makes the
  ``/metrics`` endpoint *cross-process correct*: shard processes cannot
  share a registry with the parent, but their snapshots already travel
  over the supervisor's pong frames, so the exporter renders the
  aggregate instead of a partial parent-side view.

The two sources are unioned by the HTTP exporter: snapshot-derived
families carry the authoritative service counters (``repro_submitted_total``
etc.), while the process-wide registry contributes distinctly prefixed
families (``repro_engine_*``, ``repro_explore_*``, ``repro_build_info``) —
no name ever collides.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from .metrics import DEFAULT_LATENCY_BOUNDS, Histogram, MetricFamily, Sample

__all__ = [
    "CONTENT_TYPE",
    "cache_families",
    "render",
    "snapshot_families",
]

#: The Content-Type header value of the text exposition format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: Union[int, float]) -> str:
    if isinstance(value, bool):  # bool is an int subclass; render 0/1
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def render(families: Iterable[MetricFamily]) -> str:
    """Serialize ``families`` to the text exposition format."""
    lines: List[str] = []
    for family in families:
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for sample in family.samples:
            name = family.name + sample.suffix
            if sample.labels:
                rendered = ",".join(
                    f'{key}="{_escape_label_value(value)}"'
                    for key, value in sample.labels.items()
                )
                name = f"{name}{{{rendered}}}"
            lines.append(f"{name} {_format_value(sample.value)}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Snapshot → families.
# ----------------------------------------------------------------------
def _counter(name: str, help: str, value, labels: Optional[Dict] = None) -> MetricFamily:
    return MetricFamily(
        name, "counter", help, (Sample(labels=labels or {}, value=value),)
    )


def _gauge(name: str, help: str, value, labels: Optional[Dict] = None) -> MetricFamily:
    return MetricFamily(name, "gauge", help, (Sample(labels=labels or {}, value=value),))


def _labelled_counter(name: str, help: str, rows: List[Sample]) -> MetricFamily:
    return MetricFamily(name, "counter", help, tuple(rows))


def _histogram_from_dict(
    name: str, help: str, summaries: List[Dict[str, object]]
) -> Optional[MetricFamily]:
    """Merge ``as_dict`` latency summaries into one exposition family."""
    merged: Optional[Histogram] = None
    for summary in summaries:
        if not isinstance(summary, dict):
            continue
        buckets = summary.get("buckets")
        if not isinstance(buckets, list) or len(buckets) < 2:
            continue
        if merged is None:
            bounds = tuple(
                float(row["le"]) for row in buckets if row.get("le") is not None
            )
            if not bounds:
                continue
            merged = Histogram(bounds, name=name, help=help)
        merged.merge_dict(summary)
    if merged is None:
        merged = Histogram(DEFAULT_LATENCY_BOUNDS, name=name, help=help)
    return merged.family()


_COMMON_COUNTERS = (
    ("submitted", "repro_submitted_total", "Jobs submitted to the service."),
    ("executed", "repro_executed_total", "Jobs actually simulated by a backend."),
    ("coalesced", "repro_coalesced_total", "Submissions that rode an identical in-flight job."),
    ("cache_hits", "repro_cache_hits_total", "Submissions resolved from the result cache."),
    ("failed", "repro_failed_total", "Jobs whose backend raised."),
)

_THREAD_ONLY_COUNTERS = (
    ("rejected", "repro_rejected_total", "Submissions bounced by the admission queue."),
    ("cancelled", "repro_cancelled_total", "Queued jobs cancelled by a non-draining close."),
)

_CLUSTER_ONLY_COUNTERS = (
    ("journal_hits", "repro_journal_hits_total", "Submissions served from journal-replayed completions."),
    ("shard_cache_hits", "repro_shard_cache_hits_total", "Jobs a shard resolved from the shared cache."),
    ("requeued", "repro_requeued_total", "In-flight jobs redispatched after a shard crash."),
    ("recovered", "repro_journal_recovered_total", "Unfinished journal entries replayed at startup."),
    ("restarts", "repro_shard_restarts_total", "Shard restarts performed by the supervisor."),
)


def cache_families(cache_stats: Dict[str, object]) -> List[MetricFamily]:
    """Families for one :meth:`ResultCache.stats` dict (also used by the
    cache's own registry callback — see ``ResultCache.register_metrics``)."""
    return [
        _gauge(
            "repro_result_cache_entries",
            "Entries in the on-disk result cache.",
            int(cache_stats.get("entries", 0)),
        ),
        _gauge(
            "repro_result_cache_size_bytes",
            "On-disk size of the result cache.",
            int(cache_stats.get("size_bytes", 0)),
        ),
        _counter(
            "repro_result_cache_lookup_hits_total",
            "Counted ResultCache.get hits of this process.",
            int(cache_stats.get("hits", 0)),
        ),
        _counter(
            "repro_result_cache_lookup_misses_total",
            "Counted ResultCache.get misses of this process.",
            int(cache_stats.get("misses", 0)),
        ),
    ]


def _macro_families(macro: Dict[str, object]) -> List[MetricFamily]:
    return [
        _counter(
            "repro_macro_jumps_total",
            "Steady-span macro jumps taken by the event engine.",
            int(macro.get("jumps", 0)),
        ),
        _counter(
            "repro_macro_cycles_skipped_total",
            "Cycles bulk-advanced by the macro-step fast path.",
            int(macro.get("cycles_skipped", 0)),
        ),
    ]


def snapshot_families(snapshot: Dict[str, object]) -> List[MetricFamily]:
    """Map a service/cluster snapshot dict onto metric families.

    Accepts both shapes: the flat thread-service snapshot
    (``SimulationService.snapshot()``) and the cluster snapshot with its
    nested ``stats`` counters and per-shard ``shards`` list.  Per-shard
    latency histograms are merged bucket-wise (all shards share the
    package-wide bounds) into one ``repro_latency_seconds`` family.
    """
    is_cluster = "shards" in snapshot
    counters = snapshot.get("stats", snapshot)
    assert isinstance(counters, dict)

    families: List[MetricFamily] = [
        _gauge(
            "repro_queue_depth",
            "Jobs admitted but not yet picked up by a worker.",
            int(snapshot.get("queue_depth", 0)),
        ),
        _gauge(
            "repro_inflight",
            "Unique jobs between admission and completion.",
            int(snapshot.get("inflight", 0)),
        ),
        _gauge(
            "repro_coalescing_hit_rate",
            "Fraction of submissions served by riding an in-flight duplicate.",
            float(counters.get("coalescing_hit_rate", 0.0)),
        ),
        _gauge(
            "repro_cache_hit_rate",
            "Fraction of submissions resolved from the cache (or journal).",
            float(counters.get("cache_hit_rate", 0.0)),
        ),
    ]
    for key, name, help in _COMMON_COUNTERS:
        families.append(_counter(name, help, int(counters.get(key, 0))))
    extra = _CLUSTER_ONLY_COUNTERS if is_cluster else _THREAD_ONLY_COUNTERS
    for key, name, help in extra:
        families.append(_counter(name, help, int(counters.get(key, 0))))

    latency_summaries: List[Dict[str, object]] = []
    macro_totals = {"jumps": 0, "cycles_skipped": 0}

    if is_cluster:
        shard_rows: List[Sample] = []
        alive_rows: List[Sample] = []
        depth_rows: List[Sample] = []
        for shard in snapshot.get("shards", []):
            index = shard.get("shard")
            labels = {"shard": index}
            alive_rows.append(Sample(labels=labels, value=1 if shard.get("alive") else 0))
            inner = shard.get("snapshot")
            if not isinstance(inner, dict):
                continue
            shard_rows.append(
                Sample(labels=labels, value=int(inner.get("executed", 0)))
            )
            depth_rows.append(
                Sample(labels=labels, value=int(inner.get("queue_depth", 0)))
            )
            latency = inner.get("latency")
            if isinstance(latency, dict):
                latency_summaries.append(latency)
            macro = inner.get("macro")
            if isinstance(macro, dict):
                macro_totals["jumps"] += int(macro.get("jumps", 0))
                macro_totals["cycles_skipped"] += int(macro.get("cycles_skipped", 0))
        families.append(
            _gauge(
                "repro_shard_count",
                "Configured shard processes.",
                int(snapshot.get("shard_count", 0)),
            )
        )
        families.append(
            MetricFamily(
                "repro_shard_alive",
                "gauge",
                "Liveness of each shard process (1 = alive).",
                tuple(alive_rows),
            )
        )
        if shard_rows:
            families.append(
                _labelled_counter(
                    "repro_shard_executed_total",
                    "Jobs executed per shard (from pong-frame snapshots).",
                    shard_rows,
                )
            )
        if depth_rows:
            families.append(
                MetricFamily(
                    "repro_shard_queue_depth",
                    "gauge",
                    "Queue depth per shard (from pong-frame snapshots).",
                    tuple(depth_rows),
                )
            )
    else:
        per_worker = snapshot.get("per_worker_executed")
        if isinstance(per_worker, dict) and per_worker:
            families.append(
                _labelled_counter(
                    "repro_worker_executed_total",
                    "Jobs completed per worker slot.",
                    [
                        Sample(labels={"worker": worker}, value=int(count))
                        for worker, count in sorted(per_worker.items())
                    ],
                )
            )
        latency = snapshot.get("latency")
        if isinstance(latency, dict):
            latency_summaries.append(latency)
        macro = snapshot.get("macro")
        if isinstance(macro, dict):
            macro_totals["jumps"] += int(macro.get("jumps", 0))
            macro_totals["cycles_skipped"] += int(macro.get("cycles_skipped", 0))

    families.extend(_macro_families(macro_totals))

    latency_family = _histogram_from_dict(
        "repro_latency_seconds",
        "Admission-to-completion latency of executed jobs.",
        latency_summaries,
    )
    if latency_family is not None:
        families.append(latency_family)

    cache_stats = snapshot.get("cache")
    if isinstance(cache_stats, dict):
        families.extend(cache_families(cache_stats))
    return families
