"""``repro.obs`` — the unified telemetry layer.

The ROADMAP's "Ops surface" item, built as one cross-cutting package the
serve, cluster, runtime-cache, exploration and engine layers all report
into (the DarkSide-20k DAQ lesson: a sharded system is only operable when
every stage exports rates, depths and health to a central monitor):

* :mod:`repro.obs.metrics` — thread-safe :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` primitives and the
  :class:`MetricsRegistry`; service stats are backed by per-service
  registries while :func:`get_registry` holds the process-wide metrics
  (build info, engine macro counters, exploration counters, cache
  callbacks);
* :mod:`repro.obs.exposition` — the Prometheus text renderer and the
  snapshot→families mapper that turns
  ``SimulationService.snapshot()`` / ``ClusterService.snapshot()``
  (including per-shard pong-frame aggregation) into ``/metrics`` rows;
* :mod:`repro.obs.http` — the stdlib-only :class:`MetricsServer`
  (``/metrics``, ``/snapshot``, ``/config``, ``/healthz``, dashboard);
  **disabled by default**, enabled by ``repro serve --metrics-port N``,
  the standalone ``repro metrics`` subcommand or ``REPRO_METRICS_PORT``;
* :mod:`repro.obs.trace` — per-job span timelines (submitted → queued →
  dispatched/shard-routed → executing → write-back → settled, with
  engine macro-jump instants) recorded by a process-wide
  :class:`TraceRecorder` and exported as Chrome trace-event JSON
  (``--trace out.json`` / ``REPRO_TRACE``, Perfetto-viewable);
* :mod:`repro.obs.dashboard` — the single-file HTML ops dashboard the
  exporter serves at ``/``.

See ``docs/OBSERVABILITY.md`` for the metric name table, the trace span
glossary and the dashboard walkthrough.
"""

from .metrics import (
    Counter,
    DEFAULT_LATENCY_BOUNDS,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    Sample,
    get_registry,
)
from .exposition import CONTENT_TYPE, render, snapshot_families
from .http import MetricsServer
from .trace import (
    TraceEvent,
    TraceRecorder,
    get_tracer,
    install_tracer,
    uninstall_tracer,
)

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "DEFAULT_LATENCY_BOUNDS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsServer",
    "Sample",
    "TraceEvent",
    "TraceRecorder",
    "get_registry",
    "get_tracer",
    "install_tracer",
    "render",
    "snapshot_families",
    "uninstall_tracer",
]
