"""The stdlib-only HTTP telemetry exporter.

:class:`MetricsServer` wraps :class:`http.server.ThreadingHTTPServer` (one
thread per scrape — concurrent Prometheus scrapers and dashboard polls
never serialize behind each other) and serves:

* ``/metrics`` — Prometheus text exposition: the union of the live
  service snapshot (mapped through
  :func:`~repro.obs.exposition.snapshot_families`, so cluster mode
  aggregates every shard through the supervisor's pong frames) and the
  process-wide registry (:func:`~repro.obs.metrics.get_registry`);
* ``/snapshot`` — the raw snapshot dict as JSON (what the dashboard and
  ``--stats-format json`` share);
* ``/config`` — :class:`~repro.config.RuntimeConfig` defaults vs runtime
  values, each field flagged ``overridden`` (the defaults-vs-runtime
  split of SNIPPETS Snippet 1, as JSON instead of a widget);
* ``/`` (and ``/dashboard``) — the zero-dependency live dashboard page;
* ``/healthz`` — liveness probe.

**Disabled by default**: nothing in the package constructs a server
unless ``--metrics-port`` / ``repro metrics`` / ``REPRO_METRICS_PORT``
asks for one, and the test suite asserts no socket is opened otherwise.
Port ``0`` binds an ephemeral port (the bound port is in :attr:`port` /
:attr:`url`); the default bind address is loopback — exposing telemetry
beyond the host is an explicit operator decision.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional

from .dashboard import DASHBOARD_HTML
from .exposition import CONTENT_TYPE, render, snapshot_families
from .metrics import MetricsRegistry, get_registry

__all__ = ["MetricsServer"]


class MetricsServer:
    """Serve ``/metrics``, ``/snapshot``, ``/config`` and the dashboard.

    Parameters
    ----------
    snapshot_fn:
        Zero-argument callable returning the live snapshot dict
        (``client.snapshot`` / ``cluster.snapshot``).  ``None`` serves
        registry families only and 404s ``/snapshot``.
    registry:
        Extra metrics collected into ``/metrics`` (default: the
        process-wide registry).
    host / port:
        Bind address; port ``0`` picks an ephemeral port.
    """

    def __init__(
        self,
        snapshot_fn: Optional[Callable[[], Dict[str, object]]] = None,
        registry: Optional[MetricsRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.snapshot_fn = snapshot_fn
        self.registry = registry if registry is not None else get_registry()
        self.host = host
        self.requested_port = port
        self.port: Optional[int] = None
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start(self) -> "MetricsServer":
        """Bind, spawn the serving thread, return self (idempotent)."""
        if self._server is not None:
            return self
        handler = self._make_handler()
        self._server = ThreadingHTTPServer((self.host, self.requested_port), handler)
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def url(self) -> str:
        if self.port is None:
            raise RuntimeError("metrics server not started")
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def render_metrics(self) -> str:
        """The current exposition body (snapshot families + registry)."""
        families = []
        if self.snapshot_fn is not None:
            try:
                families.extend(snapshot_families(self.snapshot_fn()))
            except Exception:  # noqa: BLE001 — a closing service must not 500 the scrape
                pass
        families.extend(self.registry.collect())
        return render(families)

    def _config_report(self) -> Dict[str, object]:
        from ..config import config_report

        return config_report()

    def _make_handler(self):
        server = self

        class Handler(BaseHTTPRequestHandler):
            # Telemetry must stay silent on stdout/stderr.
            def log_message(self, *_args) -> None:  # noqa: D102
                pass

            def _reply(self, status: int, content_type: str, body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _json(self, payload: object, status: int = 200) -> None:
                body = json.dumps(payload, default=str, indent=2).encode("utf-8")
                self._reply(status, "application/json; charset=utf-8", body)

            def do_GET(self) -> None:  # noqa: N802 — http.server API
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics":
                        self._reply(
                            200, CONTENT_TYPE, server.render_metrics().encode("utf-8")
                        )
                    elif path == "/snapshot":
                        if server.snapshot_fn is None:
                            self._json({"error": "no snapshot source"}, status=404)
                        else:
                            self._json(server.snapshot_fn())
                    elif path == "/config":
                        self._json(server._config_report())
                    elif path in ("/", "/dashboard"):
                        self._reply(
                            200,
                            "text/html; charset=utf-8",
                            DASHBOARD_HTML.encode("utf-8"),
                        )
                    elif path == "/healthz":
                        self._reply(200, "text/plain; charset=utf-8", b"ok\n")
                    else:
                        self._json({"error": f"unknown path {path}"}, status=404)
                except BrokenPipeError:  # client went away mid-reply
                    pass
                except Exception as error:  # noqa: BLE001 — report, never crash the thread
                    try:
                        self._json({"error": str(error)}, status=500)
                    except Exception:  # noqa: BLE001
                        pass

        return Handler
