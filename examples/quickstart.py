#!/usr/bin/env python3
"""Quickstart: stream data with a single DataMaestro, then run a full kernel.

Part 1 uses one read-mode DataMaestro standalone: it programs the N-D affine
AGU, streams a small tensor out of a multi-banked scratchpad and shows the
wide words the accelerator would receive.

Part 2 uses the complete evaluation system of the paper (five DataMaestros +
GeMM core + quantizer) through the ``repro.runtime`` simulation service: it
declares a 16x16x16 GeMM as a :class:`SimJob`, lets the :class:`Simulator`
compile/run/verify it, and prints the utilization and memory-access
statistics from the uniform :class:`SimOutcome`.

Part 2 also demonstrates engine selection (docs/ENGINE.md): the same job is
re-run on the legacy ``lockstep`` loop and compared against the default
event-driven scheduler — identical cycles, distinct cache identities.

Part 3 goes one step further: it hands the same runtime to the
``repro.explore`` design-space exploration engine (docs/EXPLORE.md) and
searches two design-time parameters jointly, printing the Pareto frontier
over cycles and modelled energy.

Part 4 runs a duplicate-heavy request burst through the asynchronous
simulation service (docs/SERVE.md): identical in-flight submissions
coalesce onto one backend simulation, lifecycle events stream back, and
the service drains cleanly on close — including what happens when the
bounded admission queue pushes back.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import SimJob, Simulator
from repro.core import (
    DataMaestro,
    FeatureSet,
    StreamerDesign,
    StreamerMode,
    StreamerRuntimeConfig,
)
from repro.memory import BankGeometry, MemorySubsystem
from repro.workloads import GemmWorkload


def part1_standalone_streamer():
    print("=" * 70)
    print("Part 1: one read-mode DataMaestro streaming a 4x16 int8 tensor")
    print("=" * 70)

    geometry = BankGeometry(num_banks=8, bank_width_bytes=8, bank_depth=64)
    memory = MemorySubsystem(geometry)

    # Place a small 4x16 int8 tensor row-major at address 0.
    tensor = np.arange(4 * 16, dtype=np.int8).reshape(4, 16)
    memory.scratchpad.backdoor_write(0, tensor.view(np.uint8).reshape(-1), group_size=8)

    # A 2-channel read streamer: each wide word is one 16-byte tensor row.
    design = StreamerDesign(
        name="demo",
        mode=StreamerMode.READ,
        num_channels=2,
        spatial_bounds=(2,),
        temporal_dims=2,
    )
    streamer = DataMaestro(design, geometry, group_size_options=[8, 1])
    streamer.configure(
        StreamerRuntimeConfig(
            base_address=0,
            temporal_bounds=(4,),      # four rows
            temporal_strides=(16,),    # 16 bytes apart
            spatial_strides=(8,),      # two 8-byte channels per row
            bank_group_size=8,         # fully interleaved
        )
    )

    cycles = 0
    while not streamer.done:
        streamer.begin_cycle()
        memory.deliver()
        streamer.collect_responses(memory)
        if streamer.output_valid():
            word = streamer.pop_output().view(np.int8)
            print(f"  cycle {cycles:2d}: streamed row {word[:6]} ... {word[-3:]}")
        streamer.generate_addresses()
        streamer.issue_requests(memory)
        memory.step()
        cycles += 1
    print(f"  streamed {streamer.words_streamed} wide words in {cycles} cycles\n")


def part2_full_system():
    print("=" * 70)
    print("Part 2: 16x16x16 GeMM on the five-DataMaestro evaluation system")
    print("=" * 70)

    # Describe *what* to simulate; the Simulator decides how (compilation,
    # execution, optional caching — pass cache_dir=... to make reruns free).
    simulator = Simulator()
    job = SimJob(
        workload=GemmWorkload(name="quickstart_gemm", m=16, n=16, k=16),
        features=FeatureSet.all_enabled(),
    )
    print("  job:", job.describe())

    outcome = simulator.simulate(job)
    print(f"  functional match vs numpy: {outcome.functional_match}")
    print(f"  ideal compute cycles : {outcome.ideal_compute_cycles}")
    print(f"  measured cycles      : {outcome.kernel_cycles}")
    print(f"  GeMM-core utilization: {outcome.utilization:.2%}")
    print(f"  scratchpad accesses  : {outcome.memory_accesses} words")
    print(f"  bank conflicts       : {outcome.bank_conflicts}")
    # The full cycle-level SimulationResult rides along for deep dives.
    result = outcome.result
    for port, stats in result.streamer_stats.items():
        print(
            f"    port {port}: {stats.words_streamed} wide words, "
            f"{stats.requests_granted} word requests"
        )

    # Engine selection (docs/ENGINE.md): the default "event" engine skips
    # provably idle cycles; "lockstep" is the legacy per-cycle loop.  They
    # are parity-tested to agree, and the engine is part of the job hash so
    # cached outcomes from different engines never collide.
    lockstep = simulator.simulate(job.with_updates(engine="lockstep"))
    print(
        f"  engine check: event={outcome.kernel_cycles} cycles, "
        f"lockstep={lockstep.kernel_cycles} cycles "
        f"(identical: {outcome.kernel_cycles == lockstep.kernel_cycles}, "
        f"distinct cache keys: {outcome.job_hash != lockstep.job_hash})"
    )


def part3_design_space_exploration():
    print("=" * 70)
    print("Part 3: joint design-space exploration (see docs/EXPLORE.md)")
    print("=" * 70)

    from repro.explore import (
        ExplorationEngine,
        GridStrategy,
        ParameterAxis,
        SearchSpace,
        parse_objectives,
    )

    # Two design-time axes of the paper's Table II, searched jointly; pass
    # Simulator(cache_dir=...) to make repeated explorations incremental.
    space = SearchSpace(
        axes=(
            ParameterAxis.make("data_fifo_depth", (2, 8)),
            ParameterAxis.make("gima_group_size", (16, 64)),
        ),
        name="quickstart",
    )
    engine = ExplorationEngine(
        space=space,
        strategy=GridStrategy(),
        objectives=parse_objectives("cycles,energy_pj"),
        workloads=[GemmWorkload(name="quickstart_explore", m=16, n=16, k=16)],
    )
    report = engine.run(budget=space.size())
    print(f"  evaluated {len(report.evaluations)} designs "
          f"({report.simulated} simulated)")
    print("  Pareto frontier (cycles vs modelled energy):")
    for evaluation in report.frontier:
        print(
            f"    {evaluation.candidate.key()}: "
            f"{int(evaluation.metrics['cycles'])} cycles, "
            f"{evaluation.metrics['energy_pj']:.0f} pJ"
        )


def part4_simulation_service():
    print("=" * 70)
    print("Part 4: the asynchronous simulation service (see docs/SERVE.md)")
    print("=" * 70)

    from repro.serve import QueueFullError, ServiceClient, ServiceConfig

    job = SimJob(
        workload=GemmWorkload(name="quickstart_serve", m=32, n=32, k=32),
        features=FeatureSet.all_enabled(),
    )
    config = ServiceConfig(max_workers=2, max_backlog=16)
    with ServiceClient(config=config) as client:
        # Submit → coalesce: a burst of identical jobs in one batch costs
        # exactly one backend simulation; every caller gets the same outcome.
        outcomes = client.run([job] * 8, client_name="quickstart")
        stats = client.stats()
        print(f"  submitted {stats['submitted']} identical jobs, "
              f"simulated {stats['executed']}, coalesced {stats['coalesced']} "
              f"(hit-rate {stats['coalescing_hit_rate']:.0%})")
        print(f"  all callers share one outcome object: "
              f"{all(o is outcomes[0] for o in outcomes)}")

        # Stream: every lifecycle edge was announced as a ServiceEvent.
        kinds = [event.kind for event in client.events()]
        print(f"  event stream: {' -> '.join(dict.fromkeys(kinds))}")

        # Backpressure: the admission queue is bounded.  submit() fails
        # fast with a typed error; client.run()/submit_wait() would wait.
        tiny = ServiceConfig(max_workers=1, max_backlog=16)
        print(f"  backlog bound {tiny.max_backlog}: overflowing submit() "
              f"raises {QueueFullError.__name__} (run() waits instead)")
    # leaving the context drains: queued + running jobs finished first
    print("  drained and closed cleanly")


if __name__ == "__main__":
    part1_standalone_streamer()
    part2_full_system()
    part3_design_space_exploration()
    part4_simulation_service()
