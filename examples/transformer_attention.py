#!/usr/bin/env python3
"""Transformer attention-score kernel: transposed GeMM + per-tensor requant.

The attention-score computation ``S = Q · K^T`` is the motivating case for
the Transposer datapath extension: frameworks store ``K`` row-major, so the
left operand of the GeMM arrives transposed.  This example runs a BERT-style
attention-score kernel (64 tokens per tile-block, head dimension 64) twice:

* with the Transposer enabled — the tiles are transposed on the fly inside
  DataMaestro A while streaming;
* with the Transposer disabled — a software transpose pre-pass through the
  scratchpad is required first (the situation a plain data mover is in).

It reports the utilization, cycle and memory-access difference, and finally
re-runs the kernel with the quantization accelerator enabled so the int32
scores are rescaled to int8 on the way back to memory (E = Rescale(D)).

Run with:  python examples/transformer_attention.py
"""

import numpy as np

from repro.compiler import compile_workload
from repro.core import FeatureSet
from repro.system import AcceleratorSystem, datamaestro_evaluation_system
from repro.workloads import GemmWorkload


def run_case(system, design, workload, features, label):
    program = compile_workload(workload, design, features)
    result = system.run(program)
    output_name = "E" if program.uses_quantizer else "D"
    correct = np.array_equal(
        result.outputs[output_name], program.expected_outputs[output_name]
    )
    print(f"  [{label}]")
    print(f"    pre-passes          : {[p.name for p in program.prepasses] or 'none'}")
    print(f"    kernel cycles       : {result.kernel_cycles} "
          f"(ideal {result.ideal_compute_cycles})")
    print(f"    utilization         : {result.utilization:.2%}")
    print(f"    scratchpad accesses : {result.memory_accesses} words")
    print(f"    result matches numpy: {correct}")
    return result


def main():
    design = datamaestro_evaluation_system()
    system = AcceleratorSystem(design)

    # One attention-score tile block: S[64, 64] = Q[64, 64] . K^T, int8 inputs.
    scores = GemmWorkload(
        name="bert_attention_scores", m=64, n=64, k=64, transposed_a=True
    )

    print("=" * 70)
    print("BERT-style attention scores: S = Q . K^T (transposed GeMM)")
    print("=" * 70)
    with_transposer = run_case(
        system, design, scores, FeatureSet.all_enabled(), "on-the-fly Transposer"
    )
    without_transposer = run_case(
        system,
        design,
        scores,
        FeatureSet.all_enabled().with_updates(transposer=False),
        "software transpose pre-pass",
    )
    gain = without_transposer.kernel_cycles / with_transposer.kernel_cycles
    saved = 1 - with_transposer.memory_accesses / without_transposer.memory_accesses
    print(f"\n  Transposer speed-up : {gain:.2f}x")
    print(f"  access reduction    : {saved:.1%}\n")

    print("=" * 70)
    print("Same kernel with int8 requantization through the quantizer (port E)")
    print("=" * 70)
    quantized = GemmWorkload(
        name="bert_attention_scores_q", m=64, n=64, k=64, transposed_a=True, quantize=True
    )
    run_case(system, design, quantized, FeatureSet.all_enabled(), "quantized output")


if __name__ == "__main__":
    main()
