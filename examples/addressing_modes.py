#!/usr/bin/env python3
"""Addressing-mode exploration: FIMA vs GIMA vs NIMA (paper §III-D, Fig. 5).

The same GeMM kernel is executed three times with different data-allocation /
addressing strategies:

* fully-interleaved (FIMA): all operands share one interleaved address space,
  so the A/B/C/D streams fight over banks whenever their bank windows align;
* grouped-interleaved (GIMA): the compiler places every operand in its own
  bank group and programs the per-streamer ``RS`` CSR accordingly — this is
  what the addressing-mode-switching feature enables at runtime;
* the raw address-remapper view: how one logical address decodes to
  (bank, wordline) under each mode.

Run with:  python examples/addressing_modes.py
"""

from repro.compiler import compile_workload
from repro.core import AddressRemapper, FeatureSet
from repro.memory import AddressingMode
from repro.system import AcceleratorSystem, datamaestro_evaluation_system
from repro.workloads import GemmWorkload


def show_remapper(design):
    print("Address remapper: one logical address under each addressing mode")
    remapper = AddressRemapper(
        design.memory.geometry(), design.group_size_options()
    )
    address = 0x5A40
    for index, mode in remapper.available_modes().items():
        remapper.select_index(index)
        location = remapper.decode(address)
        print(
            f"  RS={index} ({mode.short_name:4s}, group={remapper.selected_group_size:3d}): "
            f"address {address:#07x} -> bank {location.bank:3d}, line {location.line:4d}"
        )
    print()


def run_with_features(system, design, workload, features, label):
    program = compile_workload(workload, design, features)
    result = system.run(program)
    modes = {
        port: AddressingMode(
            "FIMA" if cfg.bank_group_size == design.memory.num_banks
            else ("NIMA" if cfg.bank_group_size == 1 else "GIMA")
        ).short_name
        for port, cfg in program.streamer_configs.items()
    }
    print(f"  [{label}]")
    print(f"    per-port addressing modes : {modes}")
    print(f"    utilization               : {result.utilization:.2%}")
    print(f"    bank conflicts            : {result.bank_conflicts}")
    print(f"    kernel cycles             : {result.kernel_cycles}")
    return result


def main():
    design = datamaestro_evaluation_system()
    system = AcceleratorSystem(design)
    show_remapper(design)

    workload = GemmWorkload(name="addrmode_gemm", m=64, n=64, k=96)
    print("=" * 70)
    print(f"GeMM {workload.m}x{workload.n}x{workload.k}: shared FIMA space vs per-operand GIMA groups")
    print("=" * 70)
    fima = run_with_features(
        system,
        design,
        workload,
        FeatureSet.all_enabled().with_updates(addressing_mode_switching=False),
        "fully interleaved (switching disabled)",
    )
    gima = run_with_features(
        system,
        design,
        workload,
        FeatureSet.all_enabled(),
        "per-operand bank groups (switching enabled)",
    )
    print()
    print(
        f"  addressing-mode switching removes "
        f"{fima.bank_conflicts - gima.bank_conflicts} bank conflicts and gives a "
        f"{fima.kernel_cycles / gima.kernel_cycles:.2f}x speed-up on this kernel"
    )


if __name__ == "__main__":
    main()
