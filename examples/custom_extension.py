#!/usr/bin/env python3
"""Plug-and-play datapath extensions: add a custom on-the-fly ReLU stage.

DataMaestro's datapath-extension interface (paper §III-E) lets users insert
their own data-manipulation logic between the data FIFOs and the accelerator
without touching the streamer itself.  This example registers a custom
``relu8`` extension, instantiates a read streamer that cascades it after the
built-in Transposer, and streams a tile through both stages — demonstrating
cascading, runtime bypass and the extension registry.

Run with:  python examples/custom_extension.py
"""

import numpy as np

from repro.core import (
    DataMaestro,
    DatapathExtension,
    ExtensionSpec,
    StreamerDesign,
    StreamerMode,
    StreamerRuntimeConfig,
    register_extension,
    registered_extensions,
)
from repro.memory import BankGeometry, MemorySubsystem


@register_extension
class ReluExtension(DatapathExtension):
    """Clamp negative int8 values to zero on the fly."""

    kind = "relu8"

    def process(self, word: np.ndarray) -> np.ndarray:
        values = word.view(np.int8)
        return np.maximum(values, 0).astype(np.int8).view(np.uint8)


def stream_all(streamer, memory):
    words = []
    while not streamer.done:
        streamer.begin_cycle()
        memory.deliver()
        streamer.collect_responses(memory)
        if streamer.output_valid():
            words.append(streamer.pop_output())
        streamer.generate_addresses()
        streamer.issue_requests(memory)
        memory.step()
    return words


def main():
    print("registered extension kinds:", sorted(registered_extensions()))

    geometry = BankGeometry(num_banks=8, bank_width_bytes=8, bank_depth=64)
    memory = MemorySubsystem(geometry)

    # A 4x4 int8 tile with positive and negative values, stored row-major.
    tile = np.array(
        [[-3, 5, -7, 9], [2, -4, 6, -8], [-1, 1, -2, 2], [10, -10, 20, -20]],
        dtype=np.int8,
    )
    memory.scratchpad.backdoor_write(0, tile.view(np.uint8).reshape(-1), group_size=8)
    print("input tile:\n", tile)

    design = StreamerDesign(
        name="relu_streamer",
        mode=StreamerMode.READ,
        num_channels=2,
        spatial_bounds=(2,),
        temporal_dims=2,
        extensions=(
            ExtensionSpec.make("transposer", rows=4, cols=4, element_bytes=1),
            ExtensionSpec.make("relu8"),
        ),
    )
    streamer = DataMaestro(design, geometry, group_size_options=[8, 1])

    # One wide word = the whole 16-byte tile; cascade transposer -> relu.
    runtime = StreamerRuntimeConfig(
        base_address=0,
        temporal_bounds=(1,),
        temporal_strides=(16,),
        spatial_strides=(8,),
        bank_group_size=8,
        extension_enables=(True, True),
        extension_params=(
            ("transposer", (("rows", 4), ("cols", 4), ("element_bytes", 1))),
        ),
    )
    streamer.configure(runtime)
    word = stream_all(streamer, memory)[0].view(np.int8).reshape(4, 4)
    print("\nstreamed with Transposer + ReLU enabled:\n", word)
    expected = np.maximum(tile.T, 0)
    print("matches numpy reference:", np.array_equal(word, expected))

    # Re-run with the ReLU stage bypassed at runtime.
    streamer.configure(runtime.with_updates(extension_enables=(True, False)))
    memory = MemorySubsystem(geometry)
    memory.scratchpad.backdoor_write(0, tile.view(np.uint8).reshape(-1), group_size=8)
    word = stream_all(streamer, memory)[0].view(np.int8).reshape(4, 4)
    print("\nstreamed with ReLU bypassed (transpose only):\n", word)
    print("matches plain transpose:", np.array_equal(word, tile.T))


if __name__ == "__main__":
    main()
