#!/usr/bin/env python3
"""CNN layer streaming: implicit im2col through the 6-D AGU.

Runs a ResNet-style 3x3 convolution (stride 1, padding 1) and a strided
downsampling convolution on the DataMaestro-boosted system.  The convolution
input is streamed directly from its ``C/8·H·W·8`` blocked layout using the
6-dimensional temporal access pattern of DataMaestro A — no im2col matrix is
ever materialised — and the example contrasts this with the explicit software
im2col pre-pass a plain data mover would need.

Run with:  python examples/cnn_layer.py
"""

import numpy as np

from repro.compiler import compile_workload
from repro.core import FeatureSet
from repro.system import AcceleratorSystem, datamaestro_evaluation_system
from repro.workloads import ConvWorkload


def describe_input_walk(program):
    """Print the 6-D AGU configuration the compiler emitted for port A."""
    config = program.streamer_configs["A"]
    dims = ["c2 (channel block)", "fx (kernel col)", "fy (kernel row)",
            "n2 (out-channel block)", "x2 (out-col block)", "y (out row)"]
    print("  DataMaestro A temporal walk (innermost first):")
    for name, bound, stride in zip(dims, config.temporal_bounds, config.temporal_strides):
        print(f"    {name:24s} bound={bound:4d} stride={stride} bytes")
    print(f"    spatial stride (per output pixel): {config.spatial_strides[0]} bytes")


def run_layer(system, design, layer, features, label):
    program = compile_workload(layer, design, features)
    result = system.run(program)
    correct = np.array_equal(result.outputs["D"], program.expected_outputs["D"])
    print(f"  [{label}] util={result.utilization:.2%} cycles={result.kernel_cycles} "
          f"accesses={result.memory_accesses} prepasses={[p.name for p in program.prepasses] or 'none'} "
          f"correct={correct}")
    return program, result


def main():
    design = datamaestro_evaluation_system()
    system = AcceleratorSystem(design)

    print("=" * 70)
    print("ResNet-style 3x3 convolution, 16x16x16 -> 16x16x32, stride 1, pad 1")
    print("=" * 70)
    layer = ConvWorkload(
        name="resnet_conv3x3",
        in_height=16,
        in_width=16,
        in_channels=16,
        out_channels=32,
        kernel_h=3,
        kernel_w=3,
        stride=1,
        padding=1,
    )
    program, _ = run_layer(system, design, layer, FeatureSet.all_enabled(),
                           "implicit im2col (6-D AGU)")
    describe_input_walk(program)
    run_layer(
        system,
        design,
        layer,
        FeatureSet.all_enabled().with_updates(implicit_im2col=False),
        "explicit software im2col",
    )

    print()
    print("=" * 70)
    print("Downsampling 3x3 convolution, stride 2 (feature-map reduction)")
    print("=" * 70)
    strided = ConvWorkload(
        name="resnet_downsample",
        in_height=16,
        in_width=16,
        in_channels=32,
        out_channels=32,
        kernel_h=3,
        kernel_w=3,
        stride=2,
        padding=1,
    )
    run_layer(system, design, strided, FeatureSet.all_enabled(), "stride-2, full features")

    print()
    print("=" * 70)
    print("Pointwise 1x1 convolution (no im2col needed at all)")
    print("=" * 70)
    pointwise = ConvWorkload(
        name="pointwise_1x1",
        in_height=14,
        in_width=14,
        in_channels=32,
        out_channels=32,
        kernel_h=1,
        kernel_w=1,
    )
    run_layer(system, design, pointwise, FeatureSet.all_enabled(), "1x1 convolution")


if __name__ == "__main__":
    main()
